//! Set-similarity metrics (§3.2).
//!
//! The paper evaluates three candidates and picks Jaccard:
//!
//! * the **overlap coefficient** saturates at 1 whenever one set is a
//!   subset of the other, which finds *overlapping*, not *similar*,
//!   prefixes — unsuitable;
//! * the **Dice coefficient** is "lenient", scoring slight overlaps
//!   higher (for any non-trivial overlap, Dice > Jaccard);
//! * the **Jaccard index** is balanced for differently sized sets, which
//!   matters because IPv4 and IPv6 prefixes often host differently sized
//!   domain sets.
//!
//! All metrics are computed as exact rationals ([`Ratio`]) so best-match
//! tie handling (§3.1 step 4 keeps *all* pairs sharing the highest value)
//! is never at the mercy of floating-point rounding.
//!
//! Sets are represented as **sorted, deduplicated slices** (the
//! `PrefixDomainIndex` invariant): intersections are merge walks over two
//! sorted runs, `O(|A| + |B|)` with no allocation or tree probing on the
//! pair-scoring hot path.

/// An exact non-negative rational for similarity values.
///
/// Comparison (both ordering and equality) is by *value*, using 128-bit
/// cross multiplication: `2/6 == 1/3`. The zero denominator (two empty
/// sets) is normalised to 0/1.
#[derive(Debug, Clone, Copy)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}

impl Eq for Ratio {}

impl Ratio {
    /// Creates `num/den`, normalising `x/0` to `0/1`.
    pub fn new(num: u64, den: u64) -> Self {
        if den == 0 {
            Self { num: 0, den: 1 }
        } else {
            Self { num, den }
        }
    }

    /// Exact zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };

    /// Exact one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// The numerator.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// The denominator (never zero).
    pub fn den(&self) -> u64 {
        self.den
    }

    /// The value as `f64` (for plotting and aggregation).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let lhs = self.num as u128 * other.den as u128;
        let rhs = other.num as u128 * self.den as u128;
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Intersection size of two sorted, deduplicated slices, allocation-free.
///
/// Balanced inputs use a linear merge walk (`O(|A| + |B|)`); when one
/// side is much larger — a shared-hosting hub prefix against a two-domain
/// candidate — the walk would pay for the big side, so the small side is
/// binary-probed into the large one instead (`O(min · log max)`).
pub fn intersection_size<T: Ord>(a: &[T], b: &[T]) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / 16 > small.len() {
        return small
            .iter()
            .filter(|x| large.binary_search(x).is_ok())
            .count() as u64;
    }
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard similarity index: `|A ∩ B| / |A ∪ B|` (Equation 1).
///
/// Inputs must be sorted and deduplicated.
pub fn jaccard<T: Ord>(a: &[T], b: &[T]) -> Ratio {
    jaccard_from_parts(intersection_size(a, b), a.len() as u64, b.len() as u64)
}

/// [`jaccard`] from a precomputed intersection size, for callers that
/// already walked the sets (avoids a second merge walk on the scoring
/// hot path).
pub fn jaccard_from_parts(inter: u64, a_len: u64, b_len: u64) -> Ratio {
    Ratio::new(inter, a_len + b_len - inter)
}

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)` (Equation 2).
///
/// Inputs must be sorted and deduplicated.
pub fn overlap_coefficient<T: Ord>(a: &[T], b: &[T]) -> Ratio {
    let inter = intersection_size(a, b);
    let min = a.len().min(b.len()) as u64;
    Ratio::new(inter, min)
}

/// Dice coefficient: `2·|A ∩ B| / (|A| + |B|)` (Equation 3).
///
/// Inputs must be sorted and deduplicated.
pub fn dice<T: Ord>(a: &[T], b: &[T]) -> Ratio {
    let inter = intersection_size(a, b);
    let total = a.len() as u64 + b.len() as u64;
    Ratio::new(2 * inter, total)
}

/// The similarity metric to use for pair scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimilarityMetric {
    /// The paper's choice (§3.2).
    #[default]
    Jaccard,
    /// Dice coefficient, for the Fig. 2 comparison.
    Dice,
    /// Overlap coefficient, for the Fig. 2 comparison.
    Overlap,
}

impl SimilarityMetric {
    /// Computes the metric over two sorted, deduplicated sets.
    pub fn compute<T: Ord>(&self, a: &[T], b: &[T]) -> Ratio {
        self.from_parts(intersection_size(a, b), a.len() as u64, b.len() as u64)
    }

    /// Computes the metric from a precomputed intersection size and the
    /// two set sizes, for callers that already walked the sets.
    pub fn from_parts(&self, inter: u64, a_len: u64, b_len: u64) -> Ratio {
        match self {
            SimilarityMetric::Jaccard => jaccard_from_parts(inter, a_len, b_len),
            SimilarityMetric::Dice => Ratio::new(2 * inter, a_len + b_len),
            SimilarityMetric::Overlap => Ratio::new(inter, a_len.min(b_len)),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SimilarityMetric::Jaccard => "Jaccard similarity",
            SimilarityMetric::Dice => "Dice coefficient",
            SimilarityMetric::Overlap => "Overlap coefficient",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[u32]) -> Vec<u32> {
        let mut v: Vec<u32> = items.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn paper_example_two_thirds() {
        // Fig. 3: {d1, d2, d3} vs {d1, d3} → Jaccard 2/3 ≈ 0.66.
        let a = set(&[1, 2, 3]);
        let b = set(&[1, 3]);
        assert_eq!(jaccard(&a, &b), Ratio::new(2, 3));
        assert_eq!(overlap_coefficient(&a, &b), Ratio::ONE);
        assert_eq!(dice(&a, &b), Ratio::new(4, 5));
    }

    #[test]
    fn identical_sets_score_one() {
        let a = set(&[1, 2, 3]);
        assert!(jaccard(&a, &a).is_one());
        assert!(dice(&a, &a).is_one());
        assert!(overlap_coefficient(&a, &a).is_one());
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let a = set(&[1, 2]);
        let b = set(&[3, 4]);
        assert!(jaccard(&a, &b).is_zero());
        assert!(dice(&a, &b).is_zero());
        assert!(overlap_coefficient(&a, &b).is_zero());
    }

    #[test]
    fn empty_sets_are_zero_not_nan() {
        let a: Vec<u32> = Vec::new();
        assert_eq!(jaccard(&a, &a), Ratio::ZERO);
        assert_eq!(overlap_coefficient(&a, &a), Ratio::ZERO);
        assert_eq!(dice(&a, &a), Ratio::ZERO);
        assert!(!jaccard(&a, &a).to_f64().is_nan());
    }

    #[test]
    fn asymmetric_sets_take_the_probe_path() {
        // Large/small ratio beyond 16x switches intersection_size to
        // binary probing; both code paths must agree.
        let large: Vec<u32> = (0..1000).map(|x| x * 2).collect();
        let small = set(&[3, 10, 500, 1998, 5000]);
        assert_eq!(intersection_size(&large, &small), 3);
        assert_eq!(intersection_size(&small, &large), 3);
        assert_eq!(jaccard(&large, &small), Ratio::new(3, 1002));
        let none = set(&[1, 3, 5]);
        assert_eq!(intersection_size(&large, &none), 0);
    }

    #[test]
    fn subset_saturates_overlap_only() {
        // The §3.2 argument against the overlap coefficient.
        let big = set(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let small = set(&[1, 2]);
        assert!(overlap_coefficient(&big, &small).is_one());
        assert_eq!(jaccard(&big, &small), Ratio::new(2, 10));
        assert_eq!(dice(&big, &small), Ratio::new(4, 12));
    }

    #[test]
    fn ratio_ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        // Equality is by value, not by representation.
        assert_eq!(Ratio::new(1, 3), Ratio::new(2, 6));
        assert_eq!(
            Ratio::new(1, 3).cmp(&Ratio::new(2, 6)),
            std::cmp::Ordering::Equal
        );
        assert!(Ratio::new(999_999, 1_000_000) < Ratio::ONE);
    }

    proptest! {
        #[test]
        fn prop_bounds_and_symmetry(
            a in proptest::collection::btree_set(0u32..50, 0..30),
            b in proptest::collection::btree_set(0u32..50, 0..30),
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            let b: Vec<u32> = b.into_iter().collect();
            for metric in [SimilarityMetric::Jaccard, SimilarityMetric::Dice, SimilarityMetric::Overlap] {
                let ab = metric.compute(&a, &b);
                let ba = metric.compute(&b, &a);
                prop_assert_eq!(ab, ba);
                prop_assert!(ab >= Ratio::ZERO);
                prop_assert!(ab <= Ratio::ONE);
            }
        }

        #[test]
        fn prop_jaccard_le_dice_le_overlap(
            a in proptest::collection::btree_set(0u32..50, 1..30),
            b in proptest::collection::btree_set(0u32..50, 1..30),
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            let b: Vec<u32> = b.into_iter().collect();
            // Standard pointwise ordering: J ≤ D ≤ OC.
            let j = jaccard(&a, &b);
            let d = dice(&a, &b);
            let oc = overlap_coefficient(&a, &b);
            prop_assert!(j <= d, "jaccard {j:?} > dice {d:?}");
            prop_assert!(d <= oc, "dice {d:?} > overlap {oc:?}");
        }

        #[test]
        fn prop_jaccard_one_iff_equal(
            a in proptest::collection::btree_set(0u32..50, 1..30),
            b in proptest::collection::btree_set(0u32..50, 1..30),
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            let b: Vec<u32> = b.into_iter().collect();
            prop_assert_eq!(jaccard(&a, &b).is_one(), a == b);
        }
    }
}
