//! Sibling prefix detection — the paper's primary contribution (§3).
//!
//! A **sibling prefix pair** is an IPv4 prefix and an IPv6 prefix serving a
//! similar set of dual-stack domains. This crate implements the full
//! methodology of the paper:
//!
//! 1. **DS-domain extraction** (§3.1 step 1) is provided by
//!    [`sibling_dns::DnsSnapshot`]; the pipeline consumes its dual-stack
//!    entries.
//! 2. **Prefix grouping** (step 2): [`PrefixDomainIndex`] maps every
//!    DS-domain address to its BGP-announced prefix (Routeviews-style
//!    longest-prefix match) and groups domains per prefix, per family.
//! 3. **Similarity** (step 3): [`metrics`] implements the Jaccard index
//!    together with the Dice and overlap coefficients the paper compares
//!    in §3.2, using exact rational arithmetic so tie handling is exact.
//! 4. **Best-match selection** (step 4): [`detect`] keeps, for every
//!    prefix, the counterpart(s) with the maximal similarity; zero-valued
//!    pairs are discarded and ties are kept.
//!
//! On top of detection sit:
//!
//! * [`engine`] — the sharded [`DetectEngine`]: hash-consed domain sets
//!   ([`arena`]), per-shard scoring with optional work-stealing
//!   parallelism (feature `parallel`, bit-identical serial fallback),
//!   and the longitudinal batch driver ([`DetectEngine::run_window`]);
//! * [`tuner`] — the SP-Tuner algorithm in both variants: more-specific
//!   (Algorithm 1, the headline 52% → 82% perfect-match improvement) and
//!   less-specific (Algorithm 2, the negative result of Appendix A.1);
//! * [`longitudinal`] — pair-set comparison across snapshots
//!   (new/unchanged/changed categories of Fig. 10, counts of Fig. 9);
//! * [`stability`] — DS-domain visibility and address/prefix stability
//!   (Fig. 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod epoch;
pub mod index;
pub mod longitudinal;
pub mod metrics;
pub mod pipeline;
pub mod query;
pub mod setpairs;
pub mod stability;
pub mod tuner;

pub use arena::{SetArena, SetHandle, SetId};
pub use engine::{BatchRun, BatchStats, DetectEngine, EngineConfig, MonthChurn, MonthTiming};
pub use epoch::{EpochState, IngestError};
pub use index::{DomainMove, IndexDeltaReport, PrefixDomainIndex};
pub use metrics::{dice, intersection_size, jaccard, overlap_coefficient, Ratio, SimilarityMetric};
pub use pipeline::{detect, BestMatchPolicy, SiblingPair, SiblingSet};
pub use query::{
    MonthStats, MonthView, PinnedEpoch, PublishedWindow, QueryIndexError, WindowQueryIndex,
};
pub use setpairs::{build_set_pairs, SetPair, SetPairing};
pub use tuner::{SpTunerConfig, SpTunerLsConfig, TunerOutcome};
