//! Sibling prefix *set* pairs — the §6 extension the paper sketches:
//! "it might be useful to look into sibling prefix set pairs, i.e., a set
//! of IPv4 prefixes which are siblings of a set of IPv6 prefixes. This
//! could alleviate challenges such as address space fragmentation by
//! pairing different IPv4 fragments with their IPv6 counterpart."
//!
//! Construction: sibling pairs are grouped into connected components of
//! the bipartite prefix graph (two pairs connect when they share a prefix
//! on either side). Each component becomes one [`SetPair`]; its
//! similarity is the Jaccard value over the *unions* of the component's
//! per-side domain sets. Fragmented deployments — several IPv4 fragments
//! fronting one IPv6 block, which no single (prefix, prefix) pair can
//! score perfectly — collapse into a single high-similarity set pair.

use std::collections::{BTreeMap, BTreeSet};

use sibling_dns::DomainId;
use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};

use crate::index::PrefixDomainIndex;
use crate::metrics::{jaccard_from_parts, Ratio};
use crate::pipeline::SiblingSet;

/// A set-level sibling: several IPv4 prefixes ↔ several IPv6 prefixes.
#[derive(Debug, Clone, PartialEq)]
pub struct SetPair {
    /// The IPv4 side (sorted, deduplicated).
    pub v4: Vec<Ipv4Prefix>,
    /// The IPv6 side (sorted, deduplicated).
    pub v6: Vec<Ipv6Prefix>,
    /// Jaccard similarity of the unions of the two sides' domain sets.
    pub similarity: Ratio,
    /// `|A ∪ₚ domains| ∩ |B ∪ₚ domains|`.
    pub shared_domains: u64,
    /// Number of member (prefix, prefix) pairs merged into this set pair.
    pub member_pairs: usize,
}

impl SetPair {
    /// Whether the set pair is a plain 1:1 pair.
    pub fn is_singleton(&self) -> bool {
        self.v4.len() == 1 && self.v6.len() == 1
    }
}

/// The result of set-pair construction.
#[derive(Debug, Clone, Default)]
pub struct SetPairing {
    /// All set pairs, ordered by their first IPv4 prefix.
    pub pairs: Vec<SetPair>,
}

impl SetPairing {
    /// Number of set pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no set pairs exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Share of set pairs with similarity exactly 1.
    pub fn perfect_match_share(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().filter(|p| p.similarity.is_one()).count() as f64 / self.pairs.len() as f64
    }

    /// Set pairs that merged more than one prefix pair (the fragmentation
    /// cases the extension targets).
    pub fn merged(&self) -> impl Iterator<Item = &SetPair> + '_ {
        self.pairs.iter().filter(|p| !p.is_singleton())
    }
}

/// Union-find over dense indexes.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller index wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Builds set pairs from a sibling set by merging pairs that share a
/// prefix on either side, scoring each component over the union of its
/// sides' domain sets (queried against the snapshot's host tries so
/// arbitrary — including tuned — prefixes score correctly).
pub fn build_set_pairs(index: &PrefixDomainIndex, siblings: &SiblingSet) -> SetPairing {
    let pairs: Vec<_> = siblings.iter().collect();
    if pairs.is_empty() {
        return SetPairing::default();
    }

    // Connect pairs sharing a v4 or a v6 prefix.
    let mut dsu = Dsu::new(pairs.len());
    let mut by_v4: BTreeMap<Ipv4Prefix, usize> = BTreeMap::new();
    let mut by_v6: BTreeMap<Ipv6Prefix, usize> = BTreeMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        if let Some(&j) = by_v4.get(&pair.v4) {
            dsu.union(i, j);
        } else {
            by_v4.insert(pair.v4, i);
        }
        if let Some(&j) = by_v6.get(&pair.v6) {
            dsu.union(i, j);
        } else {
            by_v6.insert(pair.v6, i);
        }
    }

    // Collect components.
    let mut components: BTreeMap<usize, (BTreeSet<Ipv4Prefix>, BTreeSet<Ipv6Prefix>, usize)> =
        BTreeMap::new();
    for (i, pair) in pairs.iter().enumerate() {
        let root = dsu.find(i);
        let entry = components.entry(root).or_default();
        entry.0.insert(pair.v4);
        entry.1.insert(pair.v6);
        entry.2 += 1;
    }

    let mut out = Vec::with_capacity(components.len());
    for (_, (v4_set, v6_set, member_pairs)) in components {
        let mut a: Vec<DomainId> = Vec::new();
        for p in &v4_set {
            a.extend(index.domains_under(p));
        }
        a.sort_unstable();
        a.dedup();
        let mut b: Vec<DomainId> = Vec::new();
        for p in &v6_set {
            b.extend(index.domains_under(p));
        }
        b.sort_unstable();
        b.dedup();
        let shared = crate::metrics::intersection_size(&a, &b);
        let similarity = jaccard_from_parts(shared, a.len() as u64, b.len() as u64);
        out.push(SetPair {
            v4: v4_set.into_iter().collect(),
            v6: v6_set.into_iter().collect(),
            similarity,
            shared_domains: shared,
            member_pairs,
        });
    }
    out.sort_by(|x, y| x.v4.cmp(&y.v4));
    SetPairing { pairs: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimilarityMetric;
    use crate::pipeline::{detect, BestMatchPolicy};
    use sibling_bgp::Rib;
    use sibling_dns::DnsSnapshot;
    use sibling_net_types::{Asn, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// The fragmentation case of §6: one IPv6 /48 fronted by two IPv4
    /// /24 fragments. Pair-level best matches can only reach J = 1/2;
    /// the set pair reaches J = 1.
    fn fragmented_fixture() -> (PrefixDomainIndex, SiblingSet) {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/24"), Asn(1));
        rib.announce(p4("198.51.7.0/24"), Asn(1));
        rib.announce(p6("2600:1::/48"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("198.51.7.1")], vec![a6("2600:1::2")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        (index, set)
    }

    #[test]
    fn fragmentation_repaired_by_set_pairs() {
        let (index, set) = fragmented_fixture();
        assert!(set.iter().all(|p| !p.similarity.is_one()));
        let set_pairs = build_set_pairs(&index, &set);
        assert_eq!(set_pairs.len(), 1);
        let sp = &set_pairs.pairs[0];
        assert_eq!(sp.v4.len(), 2, "both fragments merged");
        assert_eq!(sp.v6.len(), 1);
        assert!(sp.similarity.is_one(), "set-level Jaccard must be 1");
        assert_eq!(sp.member_pairs, 2);
        assert!(!sp.is_singleton());
        assert_eq!(set_pairs.merged().count(), 1);
        assert_eq!(set_pairs.perfect_match_share(), 1.0);
    }

    #[test]
    fn independent_pairs_stay_singletons() {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/24"), Asn(1));
        rib.announce(p4("198.51.7.0/24"), Asn(2));
        rib.announce(p6("2600:1::/48"), Asn(1));
        rib.announce(p6("2600:2::/48"), Asn(2));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("198.51.7.1")], vec![a6("2600:2::1")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        let set_pairs = build_set_pairs(&index, &set);
        assert_eq!(set_pairs.len(), 2);
        assert!(set_pairs.pairs.iter().all(SetPair::is_singleton));
        assert_eq!(set_pairs.merged().count(), 0);
    }

    #[test]
    fn empty_input_yields_empty_pairing() {
        let (index, _) = fragmented_fixture();
        let empty = SiblingSet::from_pairs(vec![]);
        let set_pairs = build_set_pairs(&index, &empty);
        assert!(set_pairs.is_empty());
        assert_eq!(set_pairs.perfect_match_share(), 0.0);
    }

    #[test]
    fn set_similarity_never_below_best_member() {
        // Merging can only add shared domains relative to the best
        // member pair *in this construction* (components share sides).
        let (index, set) = fragmented_fixture();
        let best_member = set
            .iter()
            .map(|p| p.similarity.to_f64())
            .fold(0.0f64, f64::max);
        let set_pairs = build_set_pairs(&index, &set);
        for sp in &set_pairs.pairs {
            assert!(sp.similarity.to_f64() >= best_member - 1e-12);
        }
    }
}
