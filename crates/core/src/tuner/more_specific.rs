//! SP-Tuner-MS (Algorithm 1): refine sibling pairs into more specific
//! sub-prefixes.
//!
//! Concrete semantics (the paper's pseudocode is informal; these rules are
//! what reproduce its reported behaviour):
//!
//! 1. Per starting pair, work on the *global* host tries of the snapshot
//!    (the two "PyTricia trees" of DS hosts with their domain sets).
//! 2. At each step, descend one CIDR level on each side that has not yet
//!    reached its threshold: candidate children are the occupied one-bit-
//!    longer sub-prefixes (`GetNextSubprefixes`).
//! 3. Evaluate the Jaccard value of every child cross-combination; follow
//!    the maximum (deterministic first-in-order tie-break).
//! 4. Any other combination with a non-zero Jaccard is enqueued as a new
//!    candidate sibling pair (`UpdateBranches`) — this is what prevents
//!    domain loss when hosting pods split across branches.
//! 5. Descent stops when the best child combination would *decrease* the
//!    Jaccard value (a refinement never degrades similarity), or when both
//!    sides have reached their thresholds.

use std::collections::{BTreeSet, VecDeque};

use sibling_dns::DomainId;
use sibling_net_types::{AddressFamily, Ipv4Prefix, Ipv6Prefix, Prefix};

use crate::index::PrefixDomainIndex;
use crate::metrics::jaccard;
use crate::pipeline::{SiblingPair, SiblingSet};
use crate::tuner::TunerOutcome;

/// SP-Tuner-MS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpTunerConfig {
    /// Deepest IPv4 prefix length to descend to (16–32).
    pub v4_threshold: u8,
    /// Deepest IPv6 prefix length to descend to (32–128).
    pub v6_threshold: u8,
    /// Continue descending when the Jaccard value stays *equal* (true, the
    /// default) or require strict improvement (false). Equal-descent is
    /// what drives most pairs down to the threshold lengths (Fig. 36).
    pub allow_equal: bool,
}

impl SpTunerConfig {
    /// The "most-specific routable" thresholds: /24 IPv4, /48 IPv6.
    pub fn routable() -> Self {
        Self {
            v4_threshold: 24,
            v6_threshold: 48,
            allow_equal: true,
        }
    }

    /// The paper's best-performing thresholds: /28 IPv4, /96 IPv6.
    pub fn best() -> Self {
        Self {
            v4_threshold: 28,
            v6_threshold: 96,
            allow_equal: true,
        }
    }

    /// Arbitrary thresholds (used by the Fig. 4 / Fig. 19 sweeps).
    pub fn with_thresholds(v4_threshold: u8, v6_threshold: u8) -> Self {
        assert!(v4_threshold <= 32, "IPv4 threshold beyond /32");
        assert!(v6_threshold <= 128, "IPv6 threshold beyond /128");
        Self {
            v4_threshold,
            v6_threshold,
            allow_equal: true,
        }
    }
}

impl Default for SpTunerConfig {
    fn default() -> Self {
        Self::best()
    }
}

/// Occupied one-bit-longer sub-prefixes of a prefix, or the prefix itself
/// when it may not (or cannot) descend further (`GetNextSubprefixes`,
/// family-generic).
fn next_subprefixes<F: AddressFamily>(
    index: &PrefixDomainIndex,
    p: Prefix<F>,
    threshold: u8,
) -> Vec<Prefix<F>> {
    if p.len() >= threshold {
        return vec![p];
    }
    match p.children() {
        Some((zero, one)) => {
            let mut out = Vec::with_capacity(2);
            if index.occupied(&zero) {
                out.push(zero);
            }
            if index.occupied(&one) {
                out.push(one);
            }
            if out.is_empty() {
                vec![p]
            } else {
                out
            }
        }
        None => vec![p],
    }
}

/// Refines one candidate pair; returns the refined pair and pushes
/// alternate-branch candidates onto `queue`.
fn refine_pair(
    index: &PrefixDomainIndex,
    start_v4: Ipv4Prefix,
    start_v6: Ipv6Prefix,
    config: &SpTunerConfig,
    queue: &mut VecDeque<(Ipv4Prefix, Ipv6Prefix)>,
    steps: &mut u64,
) -> Option<SiblingPair> {
    let mut cur_v4 = start_v4;
    let mut cur_v6 = start_v6;
    let mut set_a = index.domains_under(&cur_v4);
    let mut set_b = index.domains_under(&cur_v6);
    let mut cur_jacc = jaccard(&set_a, &set_b);
    if cur_jacc.is_zero() {
        return None;
    }

    loop {
        let at_threshold_v4 = cur_v4.len() >= config.v4_threshold;
        let at_threshold_v6 = cur_v6.len() >= config.v6_threshold;
        if at_threshold_v4 && at_threshold_v6 {
            break;
        }
        *steps += 1;
        let subs_v4 = next_subprefixes(index, cur_v4, config.v4_threshold);
        let subs_v6 = next_subprefixes(index, cur_v6, config.v6_threshold);
        if subs_v4[..] == [cur_v4] && subs_v6[..] == [cur_v6] {
            // Neither side can move (hosts exhausted below either level).
            break;
        }

        // Evaluate all cross combinations; follow the maximum.
        struct Candidate {
            v4: Ipv4Prefix,
            v6: Ipv6Prefix,
            jaccard: crate::metrics::Ratio,
            set_a: Vec<DomainId>,
            set_b: Vec<DomainId>,
        }
        let mut best: Option<Candidate> = None;
        let mut alternates: Vec<(Ipv4Prefix, Ipv6Prefix)> = Vec::new();
        for &c4 in &subs_v4 {
            let a = if c4 == cur_v4 {
                set_a.clone()
            } else {
                index.domains_under(&c4)
            };
            for &c6 in &subs_v6 {
                let b = if c6 == cur_v6 {
                    set_b.clone()
                } else {
                    index.domains_under(&c6)
                };
                let j = jaccard(&a, &b);
                if j.is_zero() {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some(cand) => j > cand.jaccard,
                };
                if better {
                    if let Some(cand) = &best {
                        alternates.push((cand.v4, cand.v6));
                    }
                    best = Some(Candidate {
                        v4: c4,
                        v6: c6,
                        jaccard: j,
                        set_a: a.clone(),
                        set_b: b,
                    });
                } else {
                    alternates.push((c4, c6));
                }
            }
        }

        let Some(Candidate {
            v4: b4,
            v6: b6,
            jaccard: bj,
            set_a: ba,
            set_b: bb,
        }) = best
        else {
            break;
        };
        let improves = if config.allow_equal {
            bj.cmp(&cur_jacc).is_ge()
        } else {
            bj > cur_jacc
        };
        if !improves {
            break;
        }
        // Alternate branches become new candidate pairs (no domain loss).
        for (a4, a6) in alternates {
            if (a4, a6) != (b4, b6) && (a4, a6) != (cur_v4, cur_v6) {
                queue.push_back((a4, a6));
            }
        }
        if (b4, b6) == (cur_v4, cur_v6) {
            // The best combination is standing still; nothing to gain.
            break;
        }
        cur_v4 = b4;
        cur_v6 = b6;
        cur_jacc = bj;
        set_a = ba;
        set_b = bb;
    }

    let shared = crate::metrics::intersection_size(&set_a, &set_b);
    Some(SiblingPair {
        v4: cur_v4,
        v6: cur_v6,
        similarity: cur_jacc,
        shared_domains: shared,
        v4_domains: set_a.len() as u64,
        v6_domains: set_b.len() as u64,
    })
}

/// Runs SP-Tuner-MS over a detected sibling set.
pub fn tune_more_specific(
    index: &PrefixDomainIndex,
    input: &SiblingSet,
    config: &SpTunerConfig,
) -> TunerOutcome {
    let mut queue: VecDeque<(Ipv4Prefix, Ipv6Prefix)> =
        input.iter().map(|p| (p.v4, p.v6)).collect();
    let input_pairs: BTreeSet<(Ipv4Prefix, Ipv6Prefix)> =
        input.iter().map(|p| (p.v4, p.v6)).collect();
    let mut seen: BTreeSet<(Ipv4Prefix, Ipv6Prefix)> = BTreeSet::new();
    let mut out: Vec<SiblingPair> = Vec::new();
    let mut steps = 0u64;
    let mut refined = 0usize;
    let mut derived = 0usize;

    while let Some((q4, q6)) = queue.pop_front() {
        if !seen.insert((q4, q6)) {
            continue;
        }
        let was_input = input_pairs.contains(&(q4, q6));
        if let Some(pair) = refine_pair(index, q4, q6, config, &mut queue, &mut steps) {
            if was_input && (pair.v4, pair.v6) != (q4, q6) {
                refined += 1;
            }
            if !was_input {
                derived += 1;
            }
            out.push(pair);
        }
    }

    TunerOutcome {
        pairs: SiblingSet::from_pairs(out),
        refined,
        derived,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimilarityMetric;
    use crate::pipeline::{detect, BestMatchPolicy};
    use sibling_bgp::Rib;
    use sibling_dns::{DnsSnapshot, DomainId};
    use sibling_net_types::{Asn, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// An announced /23 containing two hosting pods: 203.0.2.0/24 pairs
    /// with 2600:1::/48 and 203.0.3.0/24 pairs with 2600:1:0:1::/64…
    /// actually with a second /48. Default detection sees one blurred
    /// pair; SP-Tuner-MS should split it into two perfect matches.
    fn two_pod_fixture() -> (PrefixDomainIndex, SiblingSet) {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/23"), Asn(1));
        rib.announce(p6("2600:1::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Pod A: two domains in 203.0.2.0/24 ↔ 2600:1:a::/48.
        snap.merge(DomainId(1), vec![a4("203.0.2.10")], vec![a6("2600:1:a::1")]);
        snap.merge(DomainId(2), vec![a4("203.0.2.20")], vec![a6("2600:1:a::2")]);
        // Pod B: two domains in 203.0.3.0/24 ↔ 2600:1:b::/48.
        snap.merge(DomainId(3), vec![a4("203.0.3.10")], vec![a6("2600:1:b::1")]);
        snap.merge(DomainId(4), vec![a4("203.0.3.20")], vec![a6("2600:1:b::2")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        (index, set)
    }

    #[test]
    fn splits_blurred_pair_into_perfect_pods() {
        let (index, set) = two_pod_fixture();
        // Default: the single announced pair is already Jaccard 1 at the
        // announced sizes (all four domains on both sides), so check that
        // tuning narrows CIDRs without losing domains.
        assert_eq!(set.len(), 1);
        let outcome = tune_more_specific(&index, &set, &SpTunerConfig::best());
        // All pairs perfect and within thresholds.
        assert!(!outcome.pairs.is_empty());
        let mut domains_seen = 0u64;
        for pair in outcome.pairs.iter() {
            assert!(pair.similarity.is_one(), "tuned pairs must be perfect here");
            assert!(pair.v4.len() <= 28);
            assert!(pair.v6.len() <= 96);
            domains_seen += pair.shared_domains;
        }
        // No domain loss: all four domains appear in some tuned pair.
        assert!(
            domains_seen >= 4,
            "domains lost by tuner: {domains_seen} < 4"
        );
    }

    #[test]
    fn pods_split_when_default_is_imperfect() {
        // Make the v6 side asymmetric so the default pair is imperfect:
        // pod B has no v6 counterpart inside the best-match v6 prefix.
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/23"), Asn(1));
        rib.announce(p6("2600:1::/48"), Asn(1));
        rib.announce(p6("2600:2::/48"), Asn(2));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.10")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("203.0.2.20")], vec![a6("2600:1::2")]);
        snap.merge(DomainId(3), vec![a4("203.0.3.10")], vec![a6("2600:2::1")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        // The announced v4 /23 has {1,2,3}; 2600:1::/48 has {1,2} → J=2/3.
        let outcome = tune_more_specific(&index, &set, &SpTunerConfig::best());
        assert!(
            outcome.pairs.perfect_match_share() > set.perfect_match_share(),
            "tuning must raise the perfect-match share"
        );
        // Domain 3 must survive in some pair (no domain loss).
        let d3_present = outcome.pairs.iter().any(|p| {
            index.domains_under(&p.v4).contains(&DomainId(3))
                && index.domains_under(&p.v6).contains(&DomainId(3))
        });
        assert!(d3_present, "alternate branch with domain 3 was lost");
    }

    #[test]
    fn tuned_jaccard_never_below_original() {
        let (index, set) = two_pod_fixture();
        let outcome = tune_more_specific(&index, &set, &SpTunerConfig::routable());
        let original_min = set
            .iter()
            .map(|p| p.similarity.to_f64())
            .fold(f64::INFINITY, f64::min);
        for pair in outcome.pairs.iter() {
            assert!(
                pair.similarity.to_f64() >= original_min - 1e-12,
                "tuned pair degraded below every original pair"
            );
        }
    }

    #[test]
    fn thresholds_are_respected() {
        let (index, set) = two_pod_fixture();
        for config in [
            SpTunerConfig::with_thresholds(24, 48),
            SpTunerConfig::with_thresholds(28, 96),
            SpTunerConfig::with_thresholds(32, 128),
        ] {
            let outcome = tune_more_specific(&index, &set, &config);
            for pair in outcome.pairs.iter() {
                assert!(pair.v4.len() <= config.v4_threshold);
                assert!(pair.v6.len() <= config.v6_threshold);
            }
        }
    }

    #[test]
    fn threshold_shallower_than_announced_keeps_pair() {
        let (index, set) = two_pod_fixture();
        // Thresholds at the announced lengths: nothing can descend.
        let config = SpTunerConfig::with_thresholds(23, 32);
        let outcome = tune_more_specific(&index, &set, &config);
        assert_eq!(outcome.pairs.len(), 1);
        assert_eq!(outcome.refined, 0);
        let pair = outcome.pairs.iter().next().unwrap();
        assert_eq!(pair.v4, p4("203.0.2.0/23"));
        assert_eq!(pair.v6, p6("2600:1::/32"));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let (index, _) = two_pod_fixture();
        let empty = SiblingSet::from_pairs(vec![]);
        let outcome = tune_more_specific(&index, &empty, &SpTunerConfig::best());
        assert!(outcome.pairs.is_empty());
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    #[should_panic(expected = "IPv4 threshold beyond /32")]
    fn invalid_threshold_rejected() {
        SpTunerConfig::with_thresholds(33, 48);
    }
}
