//! SP-Tuner-LS (Algorithm 2): probe covering prefixes.
//!
//! For each sibling pair the algorithm repeatedly widens the pair by one
//! CIDR level per side and recomputes the Jaccard value over the enlarged
//! host sets. Widening stops when:
//!
//! * the origin AS of a widened prefix differs from the starting pair's
//!   origin (checked against the RIB of the same snapshot date, per
//!   Appendix A.1), or
//! * the configured climb budget is exhausted (the "with threshold"
//!   variant: 1 level for IPv4, 4 levels for IPv6), or
//! * the Jaccard value fails to improve.
//!
//! The paper's finding — reproduced by `fig22` in `sibling-analysis` — is
//! that widening does **not** improve similarity: covering prefixes pull
//! in unrelated domains on both sides.

use sibling_bgp::Rib;
use sibling_net_types::{AddressFamily, Asn, Prefix};

use crate::index::PrefixDomainIndex;
use crate::metrics::jaccard_from_parts;
use crate::pipeline::{SiblingPair, SiblingSet};
use crate::tuner::TunerOutcome;

/// SP-Tuner-LS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpTunerLsConfig {
    /// Whether to cap the climb (`true` mirrors the paper's thresholded
    /// variant; `false` climbs until AS change or no improvement).
    pub with_threshold: bool,
    /// Maximum levels to climb on the IPv4 side when thresholded.
    pub v4_levels_up: u8,
    /// Maximum levels to climb on the IPv6 side when thresholded.
    pub v6_levels_up: u8,
    /// Abort the climb when the covering prefix's origin AS changes.
    pub stop_on_as_change: bool,
}

impl Default for SpTunerLsConfig {
    fn default() -> Self {
        Self {
            with_threshold: true,
            v4_levels_up: 1,
            v6_levels_up: 4,
            stop_on_as_change: true,
        }
    }
}

impl SpTunerLsConfig {
    /// The unthresholded variant (climbs until AS change / no gain).
    pub fn without_threshold() -> Self {
        Self {
            with_threshold: false,
            ..Default::default()
        }
    }
}

/// Runs SP-Tuner-LS over a detected sibling set.
///
/// `rib` must be the routing table of the same snapshot date as `index`.
pub fn tune_less_specific(
    index: &PrefixDomainIndex,
    input: &SiblingSet,
    rib: &Rib,
    config: &SpTunerLsConfig,
) -> TunerOutcome {
    let mut out = Vec::with_capacity(input.len());
    let mut steps = 0u64;
    let mut refined = 0usize;

    for pair in input.iter() {
        let tuned = widen_pair(index, rib, pair, config, &mut steps);
        if (tuned.v4, tuned.v6) != (pair.v4, pair.v6) {
            refined += 1;
        }
        out.push(tuned);
    }

    TunerOutcome {
        pairs: SiblingSet::from_pairs(out),
        refined,
        derived: 0,
        steps,
    }
}

/// Primary origin of the most specific announcement covering `p`.
fn origin<F: AddressFamily>(rib: &Rib, p: &Prefix<F>) -> Option<Asn> {
    rib.origin_of(p).map(|r| r.primary_origin())
}

fn widen_pair(
    index: &PrefixDomainIndex,
    rib: &Rib,
    pair: &SiblingPair,
    config: &SpTunerLsConfig,
    steps: &mut u64,
) -> SiblingPair {
    let start_origin_v4 = origin(rib, &pair.v4);
    let start_origin_v6 = origin(rib, &pair.v6);

    let mut cur = *pair;
    let mut climbed_v4 = 0u8;
    let mut climbed_v6 = 0u8;

    loop {
        let budget_v4 = !config.with_threshold || climbed_v4 < config.v4_levels_up;
        let budget_v6 = !config.with_threshold || climbed_v6 < config.v6_levels_up;
        let next_v4 = if budget_v4 { cur.v4.supernet() } else { None };
        let next_v6 = if budget_v6 { cur.v6.supernet() } else { None };
        if next_v4.is_none() && next_v6.is_none() {
            break;
        }
        let cand_v4 = next_v4.unwrap_or(cur.v4);
        let cand_v6 = next_v6.unwrap_or(cur.v6);
        *steps += 1;

        if config.stop_on_as_change {
            // Widening beyond the originating AS means the pair no longer
            // describes one network's deployment.
            if origin(rib, &cand_v4) != start_origin_v4 || origin(rib, &cand_v6) != start_origin_v6
            {
                break;
            }
        }

        let a = index.domains_under(&cand_v4);
        let b = index.domains_under(&cand_v6);
        let shared = crate::metrics::intersection_size(&a, &b);
        let j = jaccard_from_parts(shared, a.len() as u64, b.len() as u64);
        if j <= cur.similarity {
            break;
        }
        cur = SiblingPair {
            v4: cand_v4,
            v6: cand_v6,
            similarity: j,
            shared_domains: shared,
            v4_domains: a.len() as u64,
            v6_domains: b.len() as u64,
        };
        if next_v4.is_some() {
            climbed_v4 += 1;
        }
        if next_v6.is_some() {
            climbed_v6 += 1;
        }
    }

    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimilarityMetric;
    use crate::pipeline::{detect, BestMatchPolicy};
    use sibling_dns::{DnsSnapshot, DomainId};
    use sibling_net_types::{Ipv4Prefix, Ipv6Prefix, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// Hosting where a domain's v4 addresses span two announced /24s of
    /// the same AS, so the announced pair has J < 1 but the covering /23
    /// reaches J = 1: the one case where LS *can* help.
    fn widenable_fixture() -> (PrefixDomainIndex, SiblingSet, Rib) {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/24"), Asn(1));
        rib.announce(p4("203.0.3.0/24"), Asn(1));
        // The covering /23 and /22 are also originated by AS1 (so the AS
        // check does not fire).
        rib.announce(p4("203.0.0.0/16"), Asn(1));
        rib.announce(p6("2600:1::/48"), Asn(1));
        rib.announce(p6("2600:1::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("203.0.3.1")], vec![a6("2600:1::2")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        (index, set, rib)
    }

    #[test]
    fn widening_merges_split_pods_when_same_as() {
        let (index, set, rib) = widenable_fixture();
        // The announced /24 pairs each have J = 1/2 ({d1} or {d2} vs {d1,d2}).
        assert!(set.iter().all(|p| !p.similarity.is_one()));
        let outcome = tune_less_specific(&index, &set, &rib, &SpTunerLsConfig::default());
        // Widening the v4 side by one level reaches the /23 = {d1, d2}.
        assert!(
            outcome.pairs.iter().any(|p| p.similarity.is_one()),
            "the covering /23 should reach J=1"
        );
        assert!(outcome.refined > 0);
    }

    #[test]
    fn as_change_stops_the_climb() {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/24"), Asn(1));
        rib.announce(p4("203.0.3.0/24"), Asn(1));
        // The covering space belongs to a *different* AS.
        rib.announce(p4("203.0.0.0/16"), Asn(99));
        rib.announce(p6("2600:1::/48"), Asn(1));
        rib.announce(p6("2600::/32"), Asn(99));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("203.0.3.1")], vec![a6("2600:1::2")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        let outcome = tune_less_specific(&index, &set, &rib, &SpTunerLsConfig::default());
        // Widening the /24 lands in AS99 territory → aborted; pairs stay.
        for pair in outcome.pairs.iter() {
            assert!(
                pair.v4.len() == 24,
                "climb should have been stopped by AS change"
            );
        }
        assert_eq!(outcome.refined, 0);
    }

    #[test]
    fn threshold_caps_the_climb() {
        let (index, set, rib) = widenable_fixture();
        // Zero budget: nothing may move.
        let config = SpTunerLsConfig {
            with_threshold: true,
            v4_levels_up: 0,
            v6_levels_up: 0,
            stop_on_as_change: true,
        };
        let outcome = tune_less_specific(&index, &set, &rib, &config);
        assert_eq!(outcome.refined, 0);
        for (orig, tuned) in set.iter().zip(outcome.pairs.iter()) {
            assert_eq!(orig.v4.len(), tuned.v4.len());
        }
    }

    #[test]
    fn no_improvement_means_no_change() {
        // A perfect pair cannot be improved by widening.
        let mut rib = Rib::new();
        rib.announce(p4("203.0.2.0/24"), Asn(1));
        rib.announce(p4("203.0.0.0/16"), Asn(1));
        rib.announce(p6("2600:1::/48"), Asn(1));
        rib.announce(p6("2600:1::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.2.1")], vec![a6("2600:1::1")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        assert!(set.iter().all(|p| p.similarity.is_one()));
        let outcome = tune_less_specific(&index, &set, &rib, &SpTunerLsConfig::without_threshold());
        assert_eq!(outcome.refined, 0);
        assert!(outcome.pairs.iter().all(|p| p.similarity.is_one()));
    }
}
