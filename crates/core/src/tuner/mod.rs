//! The SP-Tuner algorithm (§3.3, Appendix A.1).
//!
//! BGP-announced CIDR sizes are often a poor fit for the actual hosting
//! layout: an announced /23 may contain two unrelated /24 hosting pods,
//! each aligned with a different IPv6 /48. SP-Tuner searches for CIDR
//! sizes with higher Jaccard similarity:
//!
//! * [`more_specific`] (SP-Tuner-MS, Algorithm 1) descends into
//!   sub-prefixes, tracking alternate branches as new candidate pairs so
//!   no domain is lost. This is the variant the paper adopts: it raises
//!   the share of perfect-match siblings from 52% to 82% at the /28–/96
//!   thresholds.
//! * [`less_specific`] (SP-Tuner-LS, Algorithm 2) climbs to covering
//!   prefixes, stopping on origin-AS changes. The paper finds — and this
//!   reproduction confirms — that it does *not* improve similarity.

pub mod less_specific;
pub mod more_specific;

pub use less_specific::{tune_less_specific, SpTunerLsConfig};
pub use more_specific::{tune_more_specific, SpTunerConfig};

use crate::pipeline::SiblingSet;

/// The result of a tuner run.
#[derive(Debug, Clone)]
pub struct TunerOutcome {
    /// The refined sibling pair set (deduplicated, deterministic order).
    pub pairs: SiblingSet,
    /// Input pairs whose CIDR sizes actually changed.
    pub refined: usize,
    /// Additional pairs derived from alternate branches (MS only).
    pub derived: usize,
    /// Total descent/ascent levels processed (work measure).
    pub steps: u64,
}
