//! Steps 3–4 of the methodology: pair similarity and best-match selection.

use std::collections::{BTreeMap, BTreeSet};

use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};

use crate::index::PrefixDomainIndex;
use crate::metrics::{Ratio, SimilarityMetric};

/// One sibling prefix pair with its similarity evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiblingPair {
    /// The IPv4 prefix.
    pub v4: Ipv4Prefix,
    /// The IPv6 prefix.
    pub v6: Ipv6Prefix,
    /// The similarity value (Jaccard unless configured otherwise).
    pub similarity: Ratio,
    /// `|A ∩ B|`: DS domains shared by both prefixes.
    pub shared_domains: u64,
    /// `|A|`: DS domains on the IPv4 prefix.
    pub v4_domains: u64,
    /// `|B|`: DS domains on the IPv6 prefix.
    pub v6_domains: u64,
}

/// Which side's best matches constitute the sibling set (§3.1 step 4).
///
/// The paper selects, for each prefix, the counterpart(s) with the highest
/// similarity; the published pair set is the union over both families,
/// which is why the number of pairs (76k) exceeds the number of unique
/// IPv4 (46k) or IPv6 (39k) prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BestMatchPolicy {
    /// Union of per-IPv4 and per-IPv6 best matches (the paper's set).
    #[default]
    Union,
    /// Only each IPv4 prefix's best match(es).
    V4Side,
    /// Only each IPv6 prefix's best match(es).
    V6Side,
}

/// The detected sibling pair set for one snapshot.
#[derive(Debug, Clone, Default)]
pub struct SiblingSet {
    pairs: Vec<SiblingPair>,
}

impl SiblingSet {
    /// Builds a set from pairs (deduplicating on the prefix pair, sorting
    /// deterministically).
    pub fn from_pairs(mut pairs: Vec<SiblingPair>) -> Self {
        pairs.sort_by_key(|p| (p.v4, p.v6));
        pairs.dedup_by_key(|p| (p.v4, p.v6));
        Self { pairs }
    }

    /// Number of sibling pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates in deterministic (v4, v6) order.
    pub fn iter(&self) -> impl Iterator<Item = &SiblingPair> + '_ {
        self.pairs.iter()
    }

    /// The pairs as a slice, in deterministic (v4, v6) order.
    pub fn as_slice(&self) -> &[SiblingPair] {
        &self.pairs
    }

    /// Looks up a specific pair.
    pub fn get(&self, v4: &Ipv4Prefix, v6: &Ipv6Prefix) -> Option<&SiblingPair> {
        self.pairs
            .binary_search_by(|p| (p.v4, p.v6).cmp(&(*v4, *v6)))
            .ok()
            .map(|i| &self.pairs[i])
    }

    /// All similarity values (for ECDFs).
    pub fn similarity_values(&self) -> Vec<f64> {
        self.pairs.iter().map(|p| p.similarity.to_f64()).collect()
    }

    /// Share of pairs with similarity exactly 1 ("perfect match" siblings).
    pub fn perfect_match_share(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let perfect = self.pairs.iter().filter(|p| p.similarity.is_one()).count();
        perfect as f64 / self.pairs.len() as f64
    }

    /// Mean and population standard deviation of similarity values
    /// (the two numbers in each Fig. 4 / Fig. 19 heatmap cell).
    pub fn similarity_mean_std(&self) -> (f64, f64) {
        if self.pairs.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.pairs.len() as f64;
        let mean = self
            .pairs
            .iter()
            .map(|p| p.similarity.to_f64())
            .sum::<f64>()
            / n;
        let var = self
            .pairs
            .iter()
            .map(|p| {
                let d = p.similarity.to_f64() - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// Number of distinct IPv4 and IPv6 prefixes participating in pairs.
    pub fn unique_prefix_counts(&self) -> (usize, usize) {
        let v4: BTreeSet<_> = self.pairs.iter().map(|p| p.v4).collect();
        let v6: BTreeSet<_> = self.pairs.iter().map(|p| p.v6).collect();
        (v4.len(), v6.len())
    }
}

/// Whether `pair` survives best-match selection under `policy`, given
/// the per-side similarity maxima. Shared by the serial reference
/// [`detect`] and the sharded [`crate::engine::DetectEngine`] so the two
/// paths cannot drift apart on tie or zero handling.
pub(crate) fn best_match_keep(
    policy: BestMatchPolicy,
    best_v4: &BTreeMap<Ipv4Prefix, crate::metrics::Ratio>,
    best_v6: &BTreeMap<Ipv6Prefix, crate::metrics::Ratio>,
    p: &SiblingPair,
) -> bool {
    let is_best_v4 = best_v4
        .get(&p.v4)
        .is_some_and(|r| p.similarity.cmp(r).is_eq());
    let is_best_v6 = best_v6
        .get(&p.v6)
        .is_some_and(|r| p.similarity.cmp(r).is_eq());
    match policy {
        BestMatchPolicy::Union => is_best_v4 || is_best_v6,
        BestMatchPolicy::V4Side => is_best_v4,
        BestMatchPolicy::V6Side => is_best_v6,
    }
}

/// Runs steps 3–4: scores every candidate (v4, v6) prefix pair that shares
/// at least one DS domain, then keeps the best match(es) per prefix.
///
/// This is the **serial reference implementation**: one global candidate
/// set, merge-walk intersections, one best-match pass — easy to audit and
/// the oracle the property tests compare against. The scale path is
/// [`crate::engine::DetectEngine::detect`], which restructures the same
/// computation into shards with a counting join and (optionally) runs
/// them on the vendored thread pool; its output is bit-identical to this
/// function's.
///
/// Candidates are scored against the index's interned sorted
/// `Vec<DomainId>` domain sets with a merge-walk intersection, so scoring
/// allocates nothing per pair. Pairs with similarity 0 are discarded
/// (they cannot arise from the candidate generation, which requires a
/// shared domain, but the invariant is enforced for defence in depth);
/// ties at the maximum are all kept.
pub fn detect(
    index: &PrefixDomainIndex,
    metric: SimilarityMetric,
    policy: BestMatchPolicy,
) -> SiblingSet {
    // Candidate generation through domain co-occurrence: a pair can only
    // have non-zero similarity if some domain resolves into both prefixes.
    let mut candidates: BTreeSet<(Ipv4Prefix, Ipv6Prefix)> = BTreeSet::new();
    for (p4, domains) in index.groups::<u32>() {
        for d in domains {
            if let Some(v6_prefixes) = index.prefixes_of_domain::<u128>(*d) {
                for p6 in v6_prefixes {
                    candidates.insert((*p4, *p6));
                }
            }
        }
    }

    let scored: Vec<SiblingPair> = candidates
        .into_iter()
        .map(|(p4, p6)| {
            let a = index.set_of(&p4).expect("candidate v4 prefix indexed");
            let b = index.set_of(&p6).expect("candidate v6 prefix indexed");
            // Hash-consed sets: identical sets share an id and their
            // intersection short-circuits to the set length.
            let shared = a.intersection_size(b);
            let similarity = metric.from_parts(shared, a.len() as u64, b.len() as u64);
            SiblingPair {
                v4: p4,
                v6: p6,
                similarity,
                shared_domains: shared,
                v4_domains: a.len() as u64,
                v6_domains: b.len() as u64,
            }
        })
        .filter(|p| !p.similarity.is_zero())
        .collect();

    // Per-prefix maxima (exact rational comparison).
    let mut best_v4: BTreeMap<Ipv4Prefix, Ratio> = BTreeMap::new();
    let mut best_v6: BTreeMap<Ipv6Prefix, Ratio> = BTreeMap::new();
    for p in &scored {
        best_v4
            .entry(p.v4)
            .and_modify(|r| {
                if p.similarity > *r {
                    *r = p.similarity;
                }
            })
            .or_insert(p.similarity);
        best_v6
            .entry(p.v6)
            .and_modify(|r| {
                if p.similarity > *r {
                    *r = p.similarity;
                }
            })
            .or_insert(p.similarity);
    }

    SiblingSet::from_pairs(
        scored
            .into_iter()
            .filter(|p| best_match_keep(policy, &best_v4, &best_v6, p))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_bgp::Rib;
    use sibling_dns::{DnsSnapshot, DomainId};
    use sibling_net_types::{Asn, MonthDate};

    /// Brute-force pair scoring over raw slices (the test oracle).
    fn score_pair(
        metric: SimilarityMetric,
        v4: Ipv4Prefix,
        v6: Ipv6Prefix,
        a: &[DomainId],
        b: &[DomainId],
    ) -> SiblingPair {
        let shared = crate::metrics::intersection_size(a, b);
        let similarity = metric.from_parts(shared, a.len() as u64, b.len() as u64);
        SiblingPair {
            v4,
            v6,
            similarity,
            shared_domains: shared,
            v4_domains: a.len() as u64,
            v6_domains: b.len() as u64,
        }
    }

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// The worked example of Fig. 3:
    /// IPv4 prefix-1 hosts {d1, d2, d3}; IPv4 prefix-2 hosts {d4};
    /// IPv6 prefix-1 hosts {d1, d3};     IPv6 prefix-2 hosts {d4, d1-ish}…
    /// simplified to reproduce the 0.66 / 0.33 / 0.0 / 1.0 matrix.
    fn fig3_fixture() -> PrefixDomainIndex {
        let mut rib = Rib::new();
        rib.announce(p4("203.0.0.0/16"), Asn(1)); // v4 prefix-1
        rib.announce(p4("198.51.0.0/16"), Asn(2)); // v4 prefix-2
        rib.announce(p6("2600:1::/32"), Asn(1)); // v6 prefix-1
        rib.announce(p6("2600:2::/32"), Asn(2)); // v6 prefix-2

        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // d1, d3 → v4 p1 + v6 p1 ; d2 → v4 p1 + v6 p2 ; d4 → v4 p2 + v6 p2.
        snap.merge(DomainId(1), vec![a4("203.0.1.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(3), vec![a4("203.0.1.3")], vec![a6("2600:1::3")]);
        snap.merge(DomainId(2), vec![a4("203.0.1.2")], vec![a6("2600:2::2")]);
        snap.merge(DomainId(4), vec![a4("198.51.1.4")], vec![a6("2600:2::4")]);
        PrefixDomainIndex::build(&snap, &rib)
    }

    #[test]
    fn fig3_similarity_matrix() {
        let index = fig3_fixture();
        let a = index.domains(&p4("203.0.0.0/16")).unwrap();
        let b1 = index.domains(&p6("2600:1::/32")).unwrap();
        let b2 = index.domains(&p6("2600:2::/32")).unwrap();
        assert_eq!(crate::metrics::jaccard(a, b1), Ratio::new(2, 3));
        assert_eq!(crate::metrics::jaccard(a, b2), Ratio::new(1, 4));
    }

    #[test]
    fn best_match_keeps_maximum_per_prefix() {
        let index = fig3_fixture();
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        // v4 p1 best-matches v6 p1 (2/3); v4 p2 best-matches v6 p2 (1/2);
        // v6 p2's own best is v4 p2 (1/2 > 1/4).
        assert!(set.get(&p4("203.0.0.0/16"), &p6("2600:1::/32")).is_some());
        assert!(set.get(&p4("198.51.0.0/16"), &p6("2600:2::/32")).is_some());
        // The cross pair (v4 p1, v6 p2) is nobody's best match.
        assert!(set.get(&p4("203.0.0.0/16"), &p6("2600:2::/32")).is_none());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn union_policy_includes_v6_side_bests() {
        // v4 prefix with two v6 counterparts where the v4-side best is b1,
        // but b2's own best is still the v4 prefix → union keeps both.
        let mut rib = Rib::new();
        rib.announce(p4("203.0.0.0/16"), Asn(1));
        rib.announce(p6("2600:1::/32"), Asn(1));
        rib.announce(p6("2600:2::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(1), vec![a4("203.0.1.1")], vec![a6("2600:1::1")]);
        snap.merge(DomainId(2), vec![a4("203.0.1.2")], vec![a6("2600:1::2")]);
        snap.merge(DomainId(3), vec![a4("203.0.1.3")], vec![a6("2600:2::3")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        let union = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        assert_eq!(union.len(), 2);
        let v4_only = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::V4Side);
        assert_eq!(v4_only.len(), 1);
        let v6_only = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::V6Side);
        assert_eq!(v6_only.len(), 2);
    }

    #[test]
    fn ties_are_all_kept() {
        // One v4 prefix, two v6 prefixes with identical Jaccard.
        let mut rib = Rib::new();
        rib.announce(p4("203.0.0.0/16"), Asn(1));
        rib.announce(p6("2600:1::/32"), Asn(1));
        rib.announce(p6("2600:2::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(1),
            vec![a4("203.0.1.1")],
            vec![a6("2600:1::1"), a6("2600:2::1")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        assert_eq!(set.len(), 2, "tied best matches are all kept");
        for p in set.iter() {
            assert!(p.similarity.is_one());
        }
    }

    #[test]
    fn sibling_set_statistics() {
        let index = fig3_fixture();
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        let (mean, std) = set.similarity_mean_std();
        assert!(mean > 0.0 && mean < 1.0);
        assert!(std >= 0.0);
        assert_eq!(set.unique_prefix_counts(), (2, 2));
        assert_eq!(set.perfect_match_share(), 0.0);
        assert_eq!(set.similarity_values().len(), 2);
    }

    #[test]
    fn empty_index_detects_nothing() {
        let index = PrefixDomainIndex::default();
        let set = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
        assert!(set.is_empty());
        assert_eq!(set.perfect_match_share(), 0.0);
        assert_eq!(set.similarity_mean_std(), (0.0, 0.0));
    }

    /// Property test: for random small worlds, `detect` agrees with a
    /// brute-force reference implementation of steps 3–4.
    #[test]
    fn prop_detect_matches_bruteforce() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        // Each domain gets one v4 host in one of 6 /24s and one v6 host
        // in one of 6 /48s.
        let strategy = proptest::collection::vec((0u8..6, 0u8..6), 1..25);
        runner
            .run(&strategy, |assignments| {
                let mut rib = Rib::new();
                for i in 0..6u32 {
                    rib.announce(Ipv4Prefix::new(0xCB00_0000 | (i << 8), 24).unwrap(), Asn(i));
                    rib.announce(
                        Ipv6Prefix::new((0x2600u128 << 112) | ((i as u128) << 80), 48).unwrap(),
                        Asn(i),
                    );
                }
                let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
                for (d, (p4i, p6i)) in assignments.iter().enumerate() {
                    snap.merge(
                        DomainId(d as u32),
                        vec![0xCB00_0000 | ((*p4i as u32) << 8) | (d as u32 % 250 + 1)],
                        vec![(0x2600u128 << 112) | ((*p6i as u128) << 80) | (d as u128 + 1)],
                    );
                }
                let index = PrefixDomainIndex::build(&snap, &rib);
                let got = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);

                // Brute force: score all 36 pairs, keep per-side maxima.
                let mut scored: Vec<SiblingPair> = Vec::new();
                for (p4, a) in index.groups::<u32>() {
                    for (p6, b) in index.groups::<u128>() {
                        let sim = crate::metrics::jaccard(a, b);
                        if !sim.is_zero() {
                            scored.push(score_pair(SimilarityMetric::Jaccard, *p4, *p6, a, b));
                        }
                    }
                }
                let mut keep = Vec::new();
                for p in &scored {
                    let best4 = scored
                        .iter()
                        .filter(|q| q.v4 == p.v4)
                        .map(|q| q.similarity)
                        .max()
                        .unwrap();
                    let best6 = scored
                        .iter()
                        .filter(|q| q.v6 == p.v6)
                        .map(|q| q.similarity)
                        .max()
                        .unwrap();
                    if p.similarity == best4 || p.similarity == best6 {
                        keep.push(*p);
                    }
                }
                let want = SiblingSet::from_pairs(keep);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert_eq!((g.v4, g.v6), (w.v4, w.v6));
                    prop_assert_eq!(g.similarity, w.similarity);
                    prop_assert_eq!(g.shared_domains, w.shared_domains);
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn from_pairs_dedupes() {
        let pair = SiblingPair {
            v4: p4("203.0.0.0/16"),
            v6: p6("2600:1::/32"),
            similarity: Ratio::ONE,
            shared_domains: 1,
            v4_domains: 1,
            v6_domains: 1,
        };
        let set = SiblingSet::from_pairs(vec![pair, pair]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn get_on_empty_set_is_none() {
        let set = SiblingSet::default();
        assert!(set.get(&p4("203.0.0.0/16"), &p6("2600:1::/32")).is_none());
        let set = SiblingSet::from_pairs(vec![]);
        assert!(set.get(&p4("203.0.0.0/16"), &p6("2600:1::/32")).is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn get_finds_only_member_pairs() {
        let pair = SiblingPair {
            v4: p4("203.0.0.0/16"),
            v6: p6("2600:1::/32"),
            similarity: Ratio::ONE,
            shared_domains: 1,
            v4_domains: 1,
            v6_domains: 1,
        };
        let set = SiblingSet::from_pairs(vec![pair]);
        assert_eq!(
            set.get(&p4("203.0.0.0/16"), &p6("2600:1::/32")),
            Some(&pair)
        );
        assert!(set.get(&p4("203.0.0.0/16"), &p6("2600:2::/32")).is_none());
        assert!(set.get(&p4("198.51.0.0/16"), &p6("2600:1::/32")).is_none());
    }
}
