//! Step 2 of the methodology: grouping DS domains by announced prefix.
//!
//! The scoring-relevant maps (per-prefix group sets and per-domain prefix
//! lists) are held behind `Arc`s with copy-on-write patching
//! (`Arc::make_mut`): the window scheduler captures them as immutable
//! month-*m* views for its concurrent scoring tasks, and patching month
//! *m+1* in place clones a map only if an older month's view is still
//! alive — serial walks never pay for the snapshotting.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sibling_bgp::RibSource;
use sibling_dns::{DnsSnapshot, DomainId, ResolvedAddrs, SnapshotDelta, SnapshotSource};
use sibling_net_types::{AddressFamily, DualStack, FamilyMap, Ipv4Prefix, Ipv6Prefix, Prefix};
use sibling_ptrie::PatriciaTrie;

use crate::arena::{SetArena, SetHandle};

/// One family's `(old, new)` announced-prefix transition per changed
/// domain, as collected by `apply_changes` for the delta report.
type FamilyMoves<F> = BTreeMap<DomainId, (Vec<Prefix<F>>, Vec<Prefix<F>>)>;

/// The per-family half of the index: one instance per address family,
/// composed into [`PrefixDomainIndex`] through a [`DualStack`].
///
/// Domain sets are **sorted, deduplicated runs interned in a
/// [`SetArena`]** (domain ids are already dense interner output), so pair
/// scoring walks two sorted runs instead of probing `BTreeSet`s, equal
/// sets share one allocation and compare by [`crate::arena::SetId`], and
/// the hot path of `detect()` allocates nothing per candidate pair.
pub struct FamilyIndex<F: AddressFamily> {
    /// Shared with scoring views; patched copy-on-write.
    groups: Arc<BTreeMap<Prefix<F>, SetHandle>>,
    /// Raw per-prefix pushes, consumed by `finalize`.
    pending: BTreeMap<Prefix<F>, Vec<DomainId>>,
    /// Raw per-domain pushes, consumed by `finalize`.
    pending_domains: BTreeMap<DomainId, Vec<Prefix<F>>>,
    /// Shared with scoring views; patched copy-on-write. Values are
    /// `Arc` slices so a view capture is a pointer bump per entry, never
    /// a copy of the lists.
    domain_prefixes: Arc<BTreeMap<DomainId, Arc<[Prefix<F>]>>>,
    hosts: PatriciaTrie<F, Vec<DomainId>>,
    unmapped: usize,
}

impl<F: AddressFamily> Default for FamilyIndex<F> {
    fn default() -> Self {
        Self {
            groups: Arc::new(BTreeMap::new()),
            pending: BTreeMap::new(),
            pending_domains: BTreeMap::new(),
            domain_prefixes: Arc::new(BTreeMap::new()),
            hosts: PatriciaTrie::new(),
            unmapped: 0,
        }
    }
}

impl<F: AddressFamily> FamilyIndex<F> {
    /// Maps one resolved address of `domain` to its announced prefix.
    fn add<R: RibSource + ?Sized>(&mut self, domain: DomainId, addr: F, rib: &R) {
        match rib.announced_prefix(addr) {
            Some(prefix) => {
                self.pending.entry(prefix).or_default().push(domain);
                self.pending_domains.entry(domain).or_default().push(prefix);
                let host = F::host_prefix(addr);
                match self.hosts.get_mut(&host) {
                    Some(set) => set.push(domain),
                    None => {
                        self.hosts.insert(host, vec![domain]);
                    }
                }
            }
            None => self.unmapped += 1,
        }
    }

    /// Restores the sorted-set invariant after the build loop's raw
    /// pushes (a domain with several addresses in one prefix would
    /// otherwise leave duplicates) and hash-conses the group sets into
    /// the arena.
    fn finalize(&mut self, arena: &SetArena) {
        let groups = Arc::make_mut(&mut self.groups);
        for (prefix, mut set) in std::mem::take(&mut self.pending) {
            set.sort_unstable();
            set.dedup();
            groups.insert(prefix, arena.intern(set));
        }
        let domain_prefixes = Arc::make_mut(&mut self.domain_prefixes);
        for (domain, mut set) in std::mem::take(&mut self.pending_domains) {
            set.sort_unstable();
            set.dedup();
            domain_prefixes.insert(domain, set.into());
        }
        for set in self.hosts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
    }

    /// Applies a batch of per-domain family-side transitions in place:
    /// each domain's old addresses leave the index, the new ones enter,
    /// and every announced prefix a changed domain mapped to (before or
    /// after) is added to `touched` — the conservative dirty set
    /// incremental rescoring works from.
    ///
    /// Group membership edits are **accumulated per prefix** and each
    /// touched group set is re-consed through the arena exactly once
    /// ([`SetArena::update`], recycling the dead set), so a popular
    /// prefix gaining/losing many domains in one month costs one set
    /// rebuild, not one per domain.
    ///
    /// Caller contract: `rib` is the same table the index was built (or
    /// last patched) against — mappings are a pure function of the RIB,
    /// so old addresses resolve to the prefixes they were indexed under.
    fn apply_changes<R: RibSource + ?Sized>(
        &mut self,
        changes: &[(DomainId, &[F], &[F])],
        rib: &R,
        arena: &SetArena,
        mut domain_touched: Option<&mut BTreeSet<Prefix<F>>>,
        edited: Option<&mut BTreeSet<Prefix<F>>>,
        mut moves: Option<&mut FamilyMoves<F>>,
    ) {
        let mut group_adds: BTreeMap<Prefix<F>, Vec<DomainId>> = BTreeMap::new();
        let mut group_removes: BTreeMap<Prefix<F>, Vec<DomainId>> = BTreeMap::new();

        for &(domain, old_addrs, new_addrs) in changes {
            if old_addrs == new_addrs {
                // This family is unchanged (the other one moved), but the
                // domain's cross-family candidate contribution is not, so
                // its prefixes still count as hosting a changed domain —
                // when the caller wants that set at all. The indexed
                // prefix list *is* the sorted dedup of the RIB lookups.
                let current: Vec<Prefix<F>> = self
                    .domain_prefixes
                    .get(&domain)
                    .map(|p| p.to_vec())
                    .unwrap_or_default();
                if let Some(touched) = domain_touched.as_deref_mut() {
                    touched.extend(current.iter().copied());
                }
                if let Some(moves) = moves.as_deref_mut() {
                    moves.insert(domain, (current.clone(), current));
                }
                continue;
            }
            // Per-domain address/prefix sets are tiny (a handful of
            // entries), so sorted Vecs beat tree sets here.
            fn sorted_dedup<T: Ord>(mut v: Vec<T>) -> Vec<T> {
                v.sort_unstable();
                v.dedup();
                v
            }
            let mut old_prefixes: Vec<Prefix<F>> = Vec::new();
            let mut old_hosts: Vec<Prefix<F>> = Vec::new();
            let mut unmapped_old = 0usize;
            for &addr in old_addrs {
                match rib.announced_prefix(addr) {
                    Some(prefix) => {
                        old_prefixes.push(prefix);
                        old_hosts.push(F::host_prefix(addr));
                    }
                    None => unmapped_old += 1,
                }
            }
            let old_prefixes = sorted_dedup(old_prefixes);
            let old_hosts = sorted_dedup(old_hosts);
            let mut new_prefixes: Vec<Prefix<F>> = Vec::new();
            let mut new_hosts: Vec<Prefix<F>> = Vec::new();
            let mut unmapped_new = 0usize;
            for &addr in new_addrs {
                match rib.announced_prefix(addr) {
                    Some(prefix) => {
                        new_prefixes.push(prefix);
                        new_hosts.push(F::host_prefix(addr));
                    }
                    None => unmapped_new += 1,
                }
            }
            let new_prefixes = sorted_dedup(new_prefixes);
            let new_hosts = sorted_dedup(new_hosts);

            for prefix in old_prefixes.iter().filter(|p| !new_prefixes.contains(p)) {
                group_removes.entry(*prefix).or_default().push(domain);
            }
            for prefix in new_prefixes.iter().filter(|p| !old_prefixes.contains(p)) {
                group_adds.entry(*prefix).or_default().push(domain);
            }
            if let Some(touched) = domain_touched.as_deref_mut() {
                touched.extend(old_prefixes.iter().copied());
                touched.extend(new_prefixes.iter().copied());
            }
            if let Some(moves) = moves.as_deref_mut() {
                moves.insert(domain, (old_prefixes.clone(), new_prefixes.clone()));
            }

            for host in old_hosts.iter().filter(|h| !new_hosts.contains(h)) {
                self.host_remove(host, domain);
            }
            for host in new_hosts.iter().filter(|h| !old_hosts.contains(h)) {
                self.host_insert(host, domain);
            }

            let domain_map = Arc::make_mut(&mut self.domain_prefixes);
            if new_prefixes.is_empty() {
                domain_map.remove(&domain);
            } else {
                domain_map.insert(domain, new_prefixes.into());
            }

            self.unmapped = self.unmapped + unmapped_new - unmapped_old;
        }

        // One set rebuild per touched group. A domain never appears in
        // both lists of one prefix (its old and new prefix sets are
        // disjoint where they differ), so application order is free.
        let to_rebuild: BTreeSet<Prefix<F>> = group_adds
            .keys()
            .chain(group_removes.keys())
            .copied()
            .collect();
        if let Some(edited) = edited {
            edited.extend(to_rebuild.iter().copied());
        }
        if to_rebuild.is_empty() {
            return;
        }
        let groups = Arc::make_mut(&mut self.groups);
        for prefix in to_rebuild {
            let adds = group_adds.get(&prefix).map(Vec::as_slice).unwrap_or(&[]);
            let removes = group_removes.get(&prefix).map(Vec::as_slice).unwrap_or(&[]);
            match groups.remove(&prefix) {
                Some(handle) => {
                    let mut set = handle.as_slice().to_vec();
                    if !removes.is_empty() {
                        let dead: BTreeSet<DomainId> = removes.iter().copied().collect();
                        set.retain(|d| !dead.contains(d));
                    }
                    if !adds.is_empty() {
                        set.extend(adds.iter().copied());
                        set.sort_unstable();
                        set.dedup();
                    }
                    if set.is_empty() {
                        arena.release(handle);
                    } else {
                        let new = arena.update(handle, set);
                        groups.insert(prefix, new);
                    }
                }
                None => {
                    debug_assert!(removes.is_empty(), "removal from an unindexed group");
                    let mut set = adds.to_vec();
                    set.sort_unstable();
                    set.dedup();
                    if !set.is_empty() {
                        groups.insert(prefix, arena.intern(set));
                    }
                }
            }
        }
    }

    /// Removes `domain` from a host's set in the SP-Tuner trie.
    fn host_remove(&mut self, host: &Prefix<F>, domain: DomainId) {
        let Some(set) = self.hosts.get_mut(host) else {
            debug_assert!(false, "removing a domain from an unindexed host");
            return;
        };
        if let Ok(pos) = set.binary_search(&domain) {
            set.remove(pos);
        }
        if set.is_empty() {
            self.hosts.remove(host);
        }
    }

    /// Adds `domain` to a host's set in the SP-Tuner trie, keeping the
    /// sorted-set invariant.
    fn host_insert(&mut self, host: &Prefix<F>, domain: DomainId) {
        match self.hosts.get_mut(host) {
            Some(set) => {
                if let Err(pos) = set.binary_search(&domain) {
                    set.insert(pos, domain);
                }
            }
            None => {
                self.hosts.insert(*host, vec![domain]);
            }
        }
    }

    /// Releases every group-set handle back to the arena (recycling the
    /// slots of sets no other index still shares).
    fn release_sets(&mut self, arena: &SetArena) {
        let groups = std::mem::take(Arc::make_mut(&mut self.groups));
        for (_, handle) in groups {
            arena.release(handle);
        }
    }

    /// The shared group-set map — the scoring views' copy-on-write
    /// snapshot of this family's per-prefix sets.
    pub(crate) fn groups_shared(&self) -> Arc<BTreeMap<Prefix<F>, SetHandle>> {
        Arc::clone(&self.groups)
    }

    /// The shared domain→prefixes reverse map (see
    /// [`FamilyIndex::groups_shared`]).
    pub(crate) fn domain_prefixes_shared(&self) -> Arc<BTreeMap<DomainId, Arc<[Prefix<F>]>>> {
        Arc::clone(&self.domain_prefixes)
    }

    /// The DS domains grouped under an announced prefix (sorted).
    pub fn domains(&self, prefix: &Prefix<F>) -> Option<&[DomainId]> {
        self.groups.get(prefix).map(|h| h.as_slice())
    }

    /// The interned set handle of an announced prefix's domain set.
    pub fn set_of(&self, prefix: &Prefix<F>) -> Option<&SetHandle> {
        self.groups.get(prefix)
    }

    /// All announced prefixes with their domain sets, in address order.
    pub fn groups(&self) -> impl Iterator<Item = (&Prefix<F>, &[DomainId])> {
        self.groups.iter().map(|(p, d)| (p, d.as_slice()))
    }

    /// All announced prefixes with their interned set handles, in
    /// address order.
    pub fn group_sets(&self) -> impl Iterator<Item = (&Prefix<F>, &SetHandle)> {
        self.groups.iter()
    }

    /// The announced prefixes a domain resolves into (sorted).
    pub fn prefixes_of_domain(&self, domain: DomainId) -> Option<&[Prefix<F>]> {
        self.domain_prefixes.get(&domain).map(|p| &p[..])
    }

    /// Union of the domain sets of all hosts under an *arbitrary* prefix
    /// (not necessarily announced) — the SP-Tuner set query. Sorted and
    /// deduplicated.
    pub fn domains_under(&self, prefix: &Prefix<F>) -> Vec<DomainId> {
        let mut out = Vec::new();
        for (_, set) in self.hosts.covered(prefix) {
            out.extend(set.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any DS host lies under the given prefix.
    pub fn occupied(&self, prefix: &Prefix<F>) -> bool {
        self.hosts.branch_is_occupied(prefix)
    }

    /// Number of distinct announced prefixes with DS domains.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of distinct DS hosts indexed.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Addresses that had no covering announcement.
    pub fn unmapped_count(&self) -> usize {
        self.unmapped
    }
}

/// What applying a [`SnapshotDelta`] touched — the input of the engine's
/// dirty-shard computation.
///
/// The two sides carry deliberately different notions of "touched",
/// matching how sharded scoring consumes them:
///
/// * `touched_v4` is **conservative**: every v4 prefix a changed domain
///   mapped to before *or* after the delta, even when the group's
///   membership ended up identical (e.g. a v6-only retarget). Shards
///   *contain* v4 prefixes, so this catches every shard whose own
///   domains' candidate lists may have shifted.
/// * `touched_v6` is **exact membership change**: only v6 prefixes whose
///   group set actually gained or lost a domain. A clean shard refers to
///   v6 prefixes purely as candidates, and a candidate's score can only
///   move when its set (and thus `|B|`) changes. Keeping this side tight
///   stops one busy shared-hosting prefix from dirtying every shard each
///   month.
///
/// Over-approximation can only over-rescore, never miss a change.
#[derive(Debug, Clone, Default)]
pub struct IndexDeltaReport {
    /// IPv4 prefixes hosting a changed domain (before or after).
    pub touched_v4: BTreeSet<Ipv4Prefix>,
    /// IPv6 prefixes whose group membership changed.
    pub touched_v6: BTreeSet<Ipv6Prefix>,
    /// Domains whose effective (dual-stack) contribution changed.
    pub changed_domains: usize,
    /// Per changed domain: its announced-prefix lists before and after
    /// the delta, both families (for a family the delta left untouched,
    /// old and new are equal). The window scheduler maintains its
    /// shard↔candidate index from these, churn-proportionally.
    pub moves: Vec<DomainMove>,
}

/// One changed domain's effective prefix transition (see
/// [`IndexDeltaReport::moves`]). Lists are sorted and deduplicated; a
/// family the domain does not (or no longer does) map into is empty.
#[derive(Debug, Clone)]
pub struct DomainMove {
    /// The changed domain.
    pub domain: DomainId,
    /// IPv4 announced prefixes before the delta.
    pub old_v4: Vec<Ipv4Prefix>,
    /// IPv4 announced prefixes after the delta.
    pub new_v4: Vec<Ipv4Prefix>,
    /// IPv6 announced prefixes before the delta.
    pub old_v6: Vec<Ipv6Prefix>,
    /// IPv6 announced prefixes after the delta.
    pub new_v6: Vec<Ipv6Prefix>,
}

/// [`DualStack`] slot selector: family `F` stores a [`FamilyIndex<F>`].
struct IndexSlots;

impl FamilyMap for IndexSlots {
    type Out<F: AddressFamily> = FamilyIndex<F>;
}

/// The per-snapshot index the rest of the pipeline works from.
///
/// For every dual-stack domain, each address is mapped to its covering
/// BGP-announced prefix (longest-prefix match against the Routeviews-style
/// RIB of the same date, per §2.2); the index then holds, per family:
///
/// * per-prefix DS-domain sets (the sets whose Jaccard values define
///   sibling pairs);
/// * per-domain prefix sets (used by the stability analysis, Fig. 7);
/// * host tries keyed by the individual addresses with their domain sets —
///   the two "PyTricia trees" SP-Tuner traverses (§3.3).
///
/// Both families share the single [`FamilyIndex`] implementation; methods
/// here are family-generic and infer `F` from their prefix argument (or
/// take an explicit `::<u32>` / `::<u128>` where no argument names it).
///
/// Group sets are hash-consed: both families intern into **one**
/// [`SetArena`], so a v4 prefix and a v6 prefix carrying exactly the same
/// DS domains hold handles with the same [`crate::arena::SetId`] and the
/// scorer can short-circuit their intersection. Passing a caller-owned
/// arena to [`PrefixDomainIndex::build_with_arena`] extends the sharing
/// across snapshots (the batch driver's memory win).
#[derive(Default)]
pub struct PrefixDomainIndex {
    families: DualStack<IndexSlots>,
}

impl PrefixDomainIndex {
    /// Builds the index from a snapshot's dual-stack domains and the RIB
    /// of the same date, interning group sets into a private arena.
    ///
    /// Addresses without a covering announcement are counted in
    /// [`PrefixDomainIndex::unmapped_counts`] and otherwise ignored,
    /// mirroring the ~1% of OpenINTEL records the paper backfills or
    /// drops.
    pub fn build<R: RibSource + ?Sized>(snapshot: &DnsSnapshot, rib: &R) -> Self {
        Self::build_with_arena(snapshot, rib, &SetArena::new())
    }

    /// [`PrefixDomainIndex::build`] against a caller-owned arena, so
    /// identical domain sets are shared across many indexes (e.g. the
    /// months of a longitudinal window). The arena is concurrently
    /// shareable, so many indexes may build against it in parallel.
    pub fn build_with_arena<R: RibSource + ?Sized>(
        snapshot: &DnsSnapshot,
        rib: &R,
        arena: &SetArena,
    ) -> Self {
        Self::build_source_with_arena(snapshot, rib, arena)
    }

    /// [`PrefixDomainIndex::build`] over any [`SnapshotSource`] — in
    /// particular a zero-copy `SnapshotView` straight off the mmap'd
    /// snapshot store, without ever materializing a `DnsSnapshot`'s
    /// BTreeMap. The RIB side is symmetric: any [`RibSource`] serves,
    /// including a store-backed mmap'd table.
    pub fn build_source<S: SnapshotSource + ?Sized, R: RibSource + ?Sized>(
        source: &S,
        rib: &R,
    ) -> Self {
        Self::build_source_with_arena(source, rib, &SetArena::new())
    }

    /// [`PrefixDomainIndex::build_source`] against a caller-owned arena.
    pub fn build_source_with_arena<S: SnapshotSource + ?Sized, R: RibSource + ?Sized>(
        source: &S,
        rib: &R,
        arena: &SetArena,
    ) -> Self {
        let mut index = Self::default();
        for (domain, v4, v6) in source.addr_entries() {
            // Dual-stack filter (§3.1 step 1): both families present.
            if v4.is_empty() || v6.is_empty() {
                continue;
            }
            for &addr in v4 {
                index.families.v4.add(domain, addr, rib);
            }
            for &addr in v6 {
                index.families.v6.add(domain, addr, rib);
            }
        }
        index.families.v4.finalize(arena);
        index.families.v6.finalize(arena);
        index
    }

    /// Patches the index in place from a month-over-month snapshot delta
    /// instead of rebuilding it — the cost is proportional to **churn**
    /// (changed domains × their addresses), not snapshot size. Only
    /// prefixes whose domain sets changed re-intern through the arena
    /// ([`SetArena::update`]), recycling dead set slots.
    ///
    /// Only *effective* transitions mutate the index: a domain counts as
    /// changed per §3.1 step 1 semantics, i.e. by its dual-stack
    /// contribution (a v4-only domain remains invisible no matter how its
    /// v4 addresses move).
    ///
    /// **Contract:** `self` was built (or last patched) against the same
    /// `rib` and against the delta's base snapshot. Mappings are a pure
    /// function of the RIB, so a changed RIB requires a full rebuild —
    /// the engine enforces this via [`RibSource::same_table`].
    pub fn apply_delta<R: RibSource + ?Sized>(
        &mut self,
        delta: &SnapshotDelta,
        rib: &R,
        arena: &SetArena,
    ) -> IndexDeltaReport {
        let mut report = IndexDeltaReport::default();
        fn dual(addrs: &Option<ResolvedAddrs>) -> Option<&ResolvedAddrs> {
            addrs.as_ref().filter(|a| a.is_dual_stack())
        }
        let mut v4_changes: Vec<(DomainId, &[u32], &[u32])> = Vec::new();
        let mut v6_changes: Vec<(DomainId, &[u128], &[u128])> = Vec::new();
        for change in delta.changes() {
            let old = dual(&change.old);
            let new = dual(&change.new);
            if old == new {
                // Single-stack noise: the domain was never (and is still
                // not) part of the index.
                continue;
            }
            report.changed_domains += 1;
            let (old_v4, old_v6) = old.map_or((&[][..], &[][..]), |a| (&a.v4[..], &a.v6[..]));
            let (new_v4, new_v6) = new.map_or((&[][..], &[][..]), |a| (&a.v4[..], &a.v6[..]));
            v4_changes.push((change.domain, old_v4, new_v4));
            v6_changes.push((change.domain, old_v6, new_v6));
        }
        // v4 keeps the conservative domain-touched set (membership edits
        // are a subset of it, so no edited set is needed); v6 keeps only
        // actual membership edits. Both record the per-domain prefix
        // transitions the scheduler's candidate index consumes.
        let mut v4_moves: FamilyMoves<u32> = BTreeMap::new();
        let mut v6_moves: FamilyMoves<u128> = BTreeMap::new();
        self.families.v4.apply_changes(
            &v4_changes,
            rib,
            arena,
            Some(&mut report.touched_v4),
            None,
            Some(&mut v4_moves),
        );
        self.families.v6.apply_changes(
            &v6_changes,
            rib,
            arena,
            None,
            Some(&mut report.touched_v6),
            Some(&mut v6_moves),
        );
        // Both maps carry exactly the changed domains; zip them into one
        // dual-stack transition per domain.
        report.moves = v4_moves
            .into_iter()
            .map(|(domain, (old_v4, new_v4))| {
                let (old_v6, new_v6) = v6_moves.remove(&domain).unwrap_or_default();
                DomainMove {
                    domain,
                    old_v4,
                    new_v4,
                    old_v6,
                    new_v6,
                }
            })
            .collect();
        report
    }

    /// Consumes the index, releasing its interned group sets back to the
    /// arena so sets no other index shares recycle their slots. Call
    /// this when retiring an index whose arena lives on (the incremental
    /// engine does, when a RIB change supersedes a window's index);
    /// merely dropping the index strands its sets in the arena forever.
    pub fn release_sets(mut self, arena: &SetArena) {
        self.families.v4.release_sets(arena);
        self.families.v6.release_sets(arena);
    }

    /// The single-family view for family `F`.
    pub fn family<F: AddressFamily>(&self) -> &FamilyIndex<F> {
        self.families.get::<F>()
    }

    /// The DS domains grouped under an announced prefix (sorted).
    pub fn domains<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Option<&[DomainId]> {
        self.family::<F>().domains(prefix)
    }

    /// All announced prefixes of family `F` with their domain sets.
    pub fn groups<F: AddressFamily>(&self) -> impl Iterator<Item = (&Prefix<F>, &[DomainId])> {
        self.family::<F>().groups()
    }

    /// All announced prefixes of family `F` with their interned set
    /// handles (id + contents), in address order.
    pub fn group_sets<F: AddressFamily>(&self) -> impl Iterator<Item = (&Prefix<F>, &SetHandle)> {
        self.family::<F>().group_sets()
    }

    /// The interned set handle of an announced prefix's domain set.
    pub fn set_of<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Option<&SetHandle> {
        self.family::<F>().set_of(prefix)
    }

    /// The announced prefixes a domain resolves into (sorted).
    pub fn prefixes_of_domain<F: AddressFamily>(&self, domain: DomainId) -> Option<&[Prefix<F>]> {
        self.family::<F>().prefixes_of_domain(domain)
    }

    /// Union of the domain sets of all hosts under an arbitrary prefix
    /// (sorted, deduplicated).
    pub fn domains_under<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Vec<DomainId> {
        self.family::<F>().domains_under(prefix)
    }

    /// Whether any DS host lies under the given prefix.
    pub fn occupied<F: AddressFamily>(&self, prefix: &Prefix<F>) -> bool {
        self.family::<F>().occupied(prefix)
    }

    /// Number of distinct (v4, v6) announced prefixes with DS domains.
    pub fn group_counts(&self) -> (usize, usize) {
        (
            self.families.v4.group_count(),
            self.families.v6.group_count(),
        )
    }

    /// Addresses that had no covering announcement (v4, v6).
    pub fn unmapped_counts(&self) -> (usize, usize) {
        (
            self.families.v4.unmapped_count(),
            self.families.v6.unmapped_count(),
        )
    }

    /// Number of distinct DS hosts (v4, v6) indexed.
    pub fn host_counts(&self) -> (usize, usize) {
        (self.families.v4.host_count(), self.families.v6.host_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_bgp::Rib;
    use sibling_net_types::{Asn, Ipv4Prefix, Ipv6Prefix, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn fixture() -> (DnsSnapshot, Rib) {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two DS domains in the same prefixes, one v4-only domain.
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("198.51.1.2")],
            vec![a6("2600:1000::2")],
        );
        snap.merge(DomainId(2), vec![a4("198.51.9.9")], vec![]);
        (snap, rib)
    }

    #[test]
    fn groups_ds_domains_only() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        let v4 = index.domains(&p4("198.51.0.0/16")).unwrap();
        assert_eq!(v4.len(), 2, "v4-only domain must be excluded");
        assert!(v4.contains(&DomainId(0)) && v4.contains(&DomainId(1)));
        let v6 = index.domains(&p6("2600:1000::/32")).unwrap();
        assert_eq!(v6.len(), 2);
        assert_eq!(index.group_counts(), (1, 1));
        assert_eq!(index.host_counts(), (2, 2));
    }

    #[test]
    fn unmapped_addresses_counted() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        // No v6 announcement at all.
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (0, 1));
        assert_eq!(index.group_counts(), (1, 0));
    }

    #[test]
    fn unmapped_counts_both_families_and_all_addresses() {
        // An empty RIB maps nothing: every DS address of every domain must
        // be counted, none silently dropped.
        let rib = Rib::new();
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1"), a4("198.51.1.2")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("203.0.113.9")],
            vec![a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (3, 2));
        assert_eq!(index.group_counts(), (0, 0));
        assert_eq!(index.host_counts(), (0, 0));
    }

    #[test]
    fn unmapped_counts_mixed_with_mapped() {
        // One family announced, the other not; mapped addresses must not
        // leak into the unmapped tally.
        let mut rib = Rib::new();
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1"), a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (1, 0));
        assert_eq!(index.group_counts(), (0, 1));
    }

    #[test]
    fn domains_under_arbitrary_prefixes() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        // Both hosts are in 198.51.1.0/24.
        assert_eq!(index.domains_under(&p4("198.51.1.0/24")).len(), 2);
        // Narrower: only one host.
        let narrow = index.domains_under(&p4("198.51.1.1/32"));
        assert_eq!(narrow.len(), 1);
        assert!(narrow.contains(&DomainId(0)));
        assert!(index.occupied(&p4("198.51.1.0/24")));
        assert!(!index.occupied(&p4("198.51.2.0/24")));
    }

    #[test]
    fn domain_prefix_reverse_maps() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert!(index
            .prefixes_of_domain::<u32>(DomainId(0))
            .unwrap()
            .contains(&p4("198.51.0.0/16")));
        assert!(index.prefixes_of_domain::<u32>(DomainId(2)).is_none());
        assert!(index
            .prefixes_of_domain::<u128>(DomainId(1))
            .unwrap()
            .contains(&p6("2600:1000::/32")));
    }

    #[test]
    fn shared_host_accumulates_domains() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two domains on the same v4 host (shared hosting).
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.host_counts(), (1, 2));
        assert_eq!(index.domains_under(&p4("198.51.1.1/32")).len(), 2);
    }

    #[test]
    fn arena_dedups_identical_domain_sets() {
        // Shared hosting: two v4 prefixes and one v6 prefix all carry the
        // same two-domain set → one interned set, shared by all three
        // groups (across families), plus dedup hits recorded.
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(1));
        rib.announce(p4("203.0.0.0/16"), Asn(2));
        rib.announce(p6("2600:1000::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        for d in [0u32, 1] {
            snap.merge(
                DomainId(d),
                vec![
                    a4(&format!("198.51.1.{}", d + 1)),
                    a4(&format!("203.0.1.{}", d + 1)),
                ],
                vec![a6(&format!("2600:1000::{}", d + 1))],
            );
        }
        let arena = crate::arena::SetArena::new();
        let index = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        let h1 = index.set_of(&p4("198.51.0.0/16")).unwrap();
        let h2 = index.set_of(&p4("203.0.0.0/16")).unwrap();
        let h6 = index.set_of(&p6("2600:1000::/32")).unwrap();
        assert_eq!(h1.id(), h2.id(), "equal sets share one id");
        assert_eq!(h1.id(), h6.id(), "interning is cross-family");
        assert_eq!(arena.len(), 1, "one distinct set in the arena");
        assert_eq!(arena.dedup_hits(), 2);

        // A later snapshot with the same sets reuses the arena slots.
        let again = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        assert_eq!(arena.len(), 1, "cross-snapshot reuse adds no slots");
        assert_eq!(
            again.set_of(&p4("198.51.0.0/16")).unwrap().id(),
            h1.id(),
            "ids are stable across snapshots sharing an arena"
        );
    }

    /// The two indexes answer every public query identically.
    fn assert_index_equiv(got: &PrefixDomainIndex, want: &PrefixDomainIndex, what: &str) {
        let g4: Vec<_> = got.groups::<u32>().map(|(p, d)| (*p, d.to_vec())).collect();
        let w4: Vec<_> = want
            .groups::<u32>()
            .map(|(p, d)| (*p, d.to_vec()))
            .collect();
        assert_eq!(g4, w4, "v4 groups differ: {what}");
        let g6: Vec<_> = got
            .groups::<u128>()
            .map(|(p, d)| (*p, d.to_vec()))
            .collect();
        let w6: Vec<_> = want
            .groups::<u128>()
            .map(|(p, d)| (*p, d.to_vec()))
            .collect();
        assert_eq!(g6, w6, "v6 groups differ: {what}");
        assert_eq!(got.unmapped_counts(), want.unmapped_counts(), "{what}");
        assert_eq!(got.host_counts(), want.host_counts(), "{what}");
        for (p, _) in &w4 {
            assert_eq!(got.domains_under(p), want.domains_under(p), "{what}");
        }
        for (p, _) in &w6 {
            assert_eq!(got.domains_under(p), want.domains_under(p), "{what}");
        }
        let domains: BTreeSet<DomainId> = w4
            .iter()
            .flat_map(|(_, d)| d.iter().copied())
            .chain(w6.iter().flat_map(|(_, d)| d.iter().copied()))
            .collect();
        for d in domains {
            assert_eq!(
                got.prefixes_of_domain::<u32>(d),
                want.prefixes_of_domain::<u32>(d),
                "{what}"
            );
            assert_eq!(
                got.prefixes_of_domain::<u128>(d),
                want.prefixes_of_domain::<u128>(d),
                "{what}"
            );
        }
    }

    #[test]
    fn apply_delta_matches_rebuild_on_moves_and_ds_transitions() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(1));
        rib.announce(p4("203.0.0.0/16"), Asn(2));
        rib.announce(p6("2600:1000::/32"), Asn(1));
        rib.announce(p6("2600:2000::/32"), Asn(2));

        let mut old = DnsSnapshot::new(MonthDate::new(2024, 8));
        old.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        old.merge(
            DomainId(1),
            vec![a4("198.51.1.2")],
            vec![a6("2600:1000::2")],
        );
        old.merge(DomainId(2), vec![a4("203.0.1.1")], vec![a6("2600:2000::1")]);
        old.merge(DomainId(3), vec![a4("10.0.0.1")], vec![a6("2600:2000::3")]); // v4 unmapped

        let mut new = DnsSnapshot::new(MonthDate::new(2024, 9));
        // d0 moves v4-side to the other org; d1 loses v6 (DS → v4-only);
        // d2 unchanged; d3 becomes fully mapped; d4 appears.
        new.merge(DomainId(0), vec![a4("203.0.9.9")], vec![a6("2600:1000::1")]);
        new.merge(DomainId(1), vec![a4("198.51.1.2")], vec![]);
        new.merge(DomainId(2), vec![a4("203.0.1.1")], vec![a6("2600:2000::1")]);
        new.merge(
            DomainId(3),
            vec![a4("198.51.3.3")],
            vec![a6("2600:2000::3")],
        );
        new.merge(DomainId(4), vec![a4("203.0.4.4")], vec![a6("2600:1000::4")]);

        let arena = SetArena::new();
        let mut patched = PrefixDomainIndex::build_with_arena(&old, &rib, &arena);
        let delta = SnapshotDelta::diff(&old, &new);
        let report = patched.apply_delta(&delta, &rib, &arena);
        let want = PrefixDomainIndex::build(&new, &rib);
        assert_index_equiv(&patched, &want, "after mixed churn");
        assert_eq!(report.changed_domains, 4, "d2 is untouched");
        assert!(report.touched_v4.contains(&p4("198.51.0.0/16")));
        assert!(report.touched_v4.contains(&p4("203.0.0.0/16")));
        assert!(report.touched_v6.contains(&p6("2600:1000::/32")));
    }

    #[test]
    fn apply_delta_empty_and_identity() {
        let (snap, rib) = fixture();
        let arena = SetArena::new();
        let mut index = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        let delta = SnapshotDelta::diff(&snap, &snap);
        let report = index.apply_delta(&delta, &rib, &arena);
        assert_eq!(report.changed_domains, 0);
        assert!(report.touched_v4.is_empty() && report.touched_v6.is_empty());
        assert_index_equiv(&index, &PrefixDomainIndex::build(&snap, &rib), "identity");
    }

    #[test]
    fn apply_delta_recycles_dead_sets() {
        // One prefix pair whose only domain disappears: its group sets
        // die and their arena slots recycle.
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(1));
        rib.announce(p6("2600:1000::/32"), Asn(1));
        let mut old = DnsSnapshot::new(MonthDate::new(2024, 8));
        old.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        old.merge(
            DomainId(1),
            vec![a4("198.51.1.2")],
            vec![a6("2600:1000::2")],
        );
        let mut new = DnsSnapshot::new(MonthDate::new(2024, 9));
        new.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );

        let arena = SetArena::new();
        let mut index = PrefixDomainIndex::build_with_arena(&old, &rib, &arena);
        let live_before = arena.len();
        index.apply_delta(&SnapshotDelta::diff(&old, &new), &rib, &arena);
        assert!(arena.recycled_count() > 0, "shrunk sets recycle");
        assert!(arena.len() <= live_before);
        assert_index_equiv(&index, &PrefixDomainIndex::build(&new, &rib), "shrink");
    }

    #[test]
    fn release_sets_recycles_everything_not_shared() {
        let (snap, rib) = fixture();
        let arena = SetArena::new();
        let index = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        assert!(!arena.is_empty());
        index.release_sets(&arena);
        assert!(arena.is_empty(), "no other holders: everything recycles");

        // With a second index sharing the arena, only unshared sets go.
        let a = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        let b = PrefixDomainIndex::build_with_arena(&snap, &rib, &arena);
        let live = arena.len();
        a.release_sets(&arena);
        assert_eq!(arena.len(), live, "b still holds every set");
        b.release_sets(&arena);
        assert!(arena.is_empty());
    }

    /// Property: for random snapshot pairs over a fixed RIB, patching the
    /// base index with the diff is equivalent to rebuilding from the
    /// target snapshot — including dual-stack transitions, unmapped
    /// addresses, and full turnover.
    #[test]
    fn prop_apply_delta_equals_rebuild() {
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        // Per domain and month: (v4 variant 0..4, v6 variant 0..4);
        // variant 0 = family absent, 3 = unmapped address space.
        let entry = || (0u32..10, 0u8..4, 0u8..4);
        let strategy = (
            proptest::collection::vec(entry(), 0..20),
            proptest::collection::vec(entry(), 0..20),
        );
        let mut rib = Rib::new();
        for i in 0..3u32 {
            rib.announce(Ipv4Prefix::new(0xCB00_0000 | (i << 8), 24).unwrap(), Asn(i));
            rib.announce(
                Ipv6Prefix::new((0x2600u128 << 112) | ((i as u128) << 80), 48).unwrap(),
                Asn(i),
            );
        }
        runner
            .run(&strategy, |(ea, eb)| {
                let build = |date: MonthDate, entries: &[(u32, u8, u8)]| {
                    let mut s = DnsSnapshot::new(date);
                    for (id, v4, v6) in entries {
                        let v4: Vec<u32> = match v4 {
                            0 => vec![],
                            3 => vec![0x0A00_0000 | *id], // 10/8: unmapped
                            k => vec![0xCB00_0000 | ((*k as u32 - 1) << 8) | (*id + 1)],
                        };
                        let v6: Vec<u128> = match v6 {
                            0 => vec![],
                            3 => vec![(0xFC00u128 << 112) | *id as u128],
                            k => vec![
                                (0x2600u128 << 112)
                                    | (((*k as u128) - 1) << 80)
                                    | (*id as u128 + 1),
                            ],
                        };
                        s.merge(DomainId(*id), v4, v6);
                    }
                    s
                };
                let a = build(MonthDate::new(2024, 8), &ea);
                let b = build(MonthDate::new(2024, 9), &eb);
                let arena = SetArena::new();
                let mut patched = PrefixDomainIndex::build_with_arena(&a, &rib, &arena);
                patched.apply_delta(&SnapshotDelta::diff(&a, &b), &rib, &arena);
                let want = PrefixDomainIndex::build(&b, &rib);
                assert_index_equiv(&patched, &want, "random churn");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn domain_sets_are_sorted_and_deduplicated() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // One domain with two v4 addresses in the same announced prefix:
        // the group set must still list the domain once.
        snap.merge(
            DomainId(7),
            vec![a4("198.51.1.1"), a4("198.51.2.2")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(3),
            vec![a4("198.51.3.3")],
            vec![a6("2600:1000::3")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        let group = index.domains(&p4("198.51.0.0/16")).unwrap();
        assert_eq!(group, &[DomainId(3), DomainId(7)]);
        let prefixes = index.prefixes_of_domain::<u32>(DomainId(7)).unwrap();
        assert_eq!(prefixes, &[p4("198.51.0.0/16")]);
    }
}
