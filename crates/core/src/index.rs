//! Step 2 of the methodology: grouping DS domains by announced prefix.

use std::collections::BTreeMap;

use sibling_bgp::Rib;
use sibling_dns::{DnsSnapshot, DomainId};
use sibling_net_types::{AddressFamily, DualStack, FamilyMap, Prefix};
use sibling_ptrie::PatriciaTrie;

use crate::arena::{SetArena, SetHandle};

/// The per-family half of the index: one instance per address family,
/// composed into [`PrefixDomainIndex`] through a [`DualStack`].
///
/// Domain sets are **sorted, deduplicated runs interned in a
/// [`SetArena`]** (domain ids are already dense interner output), so pair
/// scoring walks two sorted runs instead of probing `BTreeSet`s, equal
/// sets share one allocation and compare by [`crate::arena::SetId`], and
/// the hot path of `detect()` allocates nothing per candidate pair.
pub struct FamilyIndex<F: AddressFamily> {
    groups: BTreeMap<Prefix<F>, SetHandle>,
    /// Raw per-prefix pushes, consumed by `finalize`.
    pending: BTreeMap<Prefix<F>, Vec<DomainId>>,
    domain_prefixes: BTreeMap<DomainId, Vec<Prefix<F>>>,
    hosts: PatriciaTrie<F, Vec<DomainId>>,
    unmapped: usize,
}

impl<F: AddressFamily> Default for FamilyIndex<F> {
    fn default() -> Self {
        Self {
            groups: BTreeMap::new(),
            pending: BTreeMap::new(),
            domain_prefixes: BTreeMap::new(),
            hosts: PatriciaTrie::new(),
            unmapped: 0,
        }
    }
}

impl<F: AddressFamily> FamilyIndex<F> {
    /// Maps one resolved address of `domain` to its announced prefix.
    fn add(&mut self, domain: DomainId, addr: F, rib: &Rib) {
        match rib.lookup(addr) {
            Some(route) => {
                self.pending.entry(route.prefix).or_default().push(domain);
                self.domain_prefixes
                    .entry(domain)
                    .or_default()
                    .push(route.prefix);
                let host = F::host_prefix(addr);
                match self.hosts.get_mut(&host) {
                    Some(set) => set.push(domain),
                    None => {
                        self.hosts.insert(host, vec![domain]);
                    }
                }
            }
            None => self.unmapped += 1,
        }
    }

    /// Restores the sorted-set invariant after the build loop's raw
    /// pushes (a domain with several addresses in one prefix would
    /// otherwise leave duplicates) and hash-conses the group sets into
    /// the arena.
    fn finalize(&mut self, arena: &mut SetArena) {
        for (prefix, mut set) in std::mem::take(&mut self.pending) {
            set.sort_unstable();
            set.dedup();
            self.groups.insert(prefix, arena.intern(set));
        }
        for set in self.domain_prefixes.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
        for set in self.hosts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
    }

    /// The DS domains grouped under an announced prefix (sorted).
    pub fn domains(&self, prefix: &Prefix<F>) -> Option<&[DomainId]> {
        self.groups.get(prefix).map(|h| h.as_slice())
    }

    /// The interned set handle of an announced prefix's domain set.
    pub fn set_of(&self, prefix: &Prefix<F>) -> Option<&SetHandle> {
        self.groups.get(prefix)
    }

    /// All announced prefixes with their domain sets, in address order.
    pub fn groups(&self) -> impl Iterator<Item = (&Prefix<F>, &[DomainId])> {
        self.groups.iter().map(|(p, d)| (p, d.as_slice()))
    }

    /// All announced prefixes with their interned set handles, in
    /// address order.
    pub fn group_sets(&self) -> impl Iterator<Item = (&Prefix<F>, &SetHandle)> {
        self.groups.iter()
    }

    /// The announced prefixes a domain resolves into (sorted).
    pub fn prefixes_of_domain(&self, domain: DomainId) -> Option<&[Prefix<F>]> {
        self.domain_prefixes.get(&domain).map(Vec::as_slice)
    }

    /// Union of the domain sets of all hosts under an *arbitrary* prefix
    /// (not necessarily announced) — the SP-Tuner set query. Sorted and
    /// deduplicated.
    pub fn domains_under(&self, prefix: &Prefix<F>) -> Vec<DomainId> {
        let mut out = Vec::new();
        for (_, set) in self.hosts.covered(prefix) {
            out.extend(set.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any DS host lies under the given prefix.
    pub fn occupied(&self, prefix: &Prefix<F>) -> bool {
        self.hosts.branch_is_occupied(prefix)
    }

    /// Number of distinct announced prefixes with DS domains.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of distinct DS hosts indexed.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Addresses that had no covering announcement.
    pub fn unmapped_count(&self) -> usize {
        self.unmapped
    }
}

/// [`DualStack`] slot selector: family `F` stores a [`FamilyIndex<F>`].
struct IndexSlots;

impl FamilyMap for IndexSlots {
    type Out<F: AddressFamily> = FamilyIndex<F>;
}

/// The per-snapshot index the rest of the pipeline works from.
///
/// For every dual-stack domain, each address is mapped to its covering
/// BGP-announced prefix (longest-prefix match against the Routeviews-style
/// RIB of the same date, per §2.2); the index then holds, per family:
///
/// * per-prefix DS-domain sets (the sets whose Jaccard values define
///   sibling pairs);
/// * per-domain prefix sets (used by the stability analysis, Fig. 7);
/// * host tries keyed by the individual addresses with their domain sets —
///   the two "PyTricia trees" SP-Tuner traverses (§3.3).
///
/// Both families share the single [`FamilyIndex`] implementation; methods
/// here are family-generic and infer `F` from their prefix argument (or
/// take an explicit `::<u32>` / `::<u128>` where no argument names it).
///
/// Group sets are hash-consed: both families intern into **one**
/// [`SetArena`], so a v4 prefix and a v6 prefix carrying exactly the same
/// DS domains hold handles with the same [`crate::arena::SetId`] and the
/// scorer can short-circuit their intersection. Passing a caller-owned
/// arena to [`PrefixDomainIndex::build_with_arena`] extends the sharing
/// across snapshots (the batch driver's memory win).
#[derive(Default)]
pub struct PrefixDomainIndex {
    families: DualStack<IndexSlots>,
}

impl PrefixDomainIndex {
    /// Builds the index from a snapshot's dual-stack domains and the RIB
    /// of the same date, interning group sets into a private arena.
    ///
    /// Addresses without a covering announcement are counted in
    /// [`PrefixDomainIndex::unmapped_counts`] and otherwise ignored,
    /// mirroring the ~1% of OpenINTEL records the paper backfills or
    /// drops.
    pub fn build(snapshot: &DnsSnapshot, rib: &Rib) -> Self {
        Self::build_with_arena(snapshot, rib, &mut SetArena::new())
    }

    /// [`PrefixDomainIndex::build`] against a caller-owned arena, so
    /// identical domain sets are shared across many indexes (e.g. the
    /// months of a longitudinal window).
    pub fn build_with_arena(snapshot: &DnsSnapshot, rib: &Rib, arena: &mut SetArena) -> Self {
        let mut index = Self::default();
        for (domain, addrs) in snapshot.ds_domains() {
            for &addr in &addrs.v4 {
                index.families.v4.add(domain, addr, rib);
            }
            for &addr in &addrs.v6 {
                index.families.v6.add(domain, addr, rib);
            }
        }
        index.families.v4.finalize(arena);
        index.families.v6.finalize(arena);
        index
    }

    /// The single-family view for family `F`.
    pub fn family<F: AddressFamily>(&self) -> &FamilyIndex<F> {
        self.families.get::<F>()
    }

    /// The DS domains grouped under an announced prefix (sorted).
    pub fn domains<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Option<&[DomainId]> {
        self.family::<F>().domains(prefix)
    }

    /// All announced prefixes of family `F` with their domain sets.
    pub fn groups<F: AddressFamily>(&self) -> impl Iterator<Item = (&Prefix<F>, &[DomainId])> {
        self.family::<F>().groups()
    }

    /// All announced prefixes of family `F` with their interned set
    /// handles (id + contents), in address order.
    pub fn group_sets<F: AddressFamily>(&self) -> impl Iterator<Item = (&Prefix<F>, &SetHandle)> {
        self.family::<F>().group_sets()
    }

    /// The interned set handle of an announced prefix's domain set.
    pub fn set_of<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Option<&SetHandle> {
        self.family::<F>().set_of(prefix)
    }

    /// The announced prefixes a domain resolves into (sorted).
    pub fn prefixes_of_domain<F: AddressFamily>(&self, domain: DomainId) -> Option<&[Prefix<F>]> {
        self.family::<F>().prefixes_of_domain(domain)
    }

    /// Union of the domain sets of all hosts under an arbitrary prefix
    /// (sorted, deduplicated).
    pub fn domains_under<F: AddressFamily>(&self, prefix: &Prefix<F>) -> Vec<DomainId> {
        self.family::<F>().domains_under(prefix)
    }

    /// Whether any DS host lies under the given prefix.
    pub fn occupied<F: AddressFamily>(&self, prefix: &Prefix<F>) -> bool {
        self.family::<F>().occupied(prefix)
    }

    /// Number of distinct (v4, v6) announced prefixes with DS domains.
    pub fn group_counts(&self) -> (usize, usize) {
        (
            self.families.v4.group_count(),
            self.families.v6.group_count(),
        )
    }

    /// Addresses that had no covering announcement (v4, v6).
    pub fn unmapped_counts(&self) -> (usize, usize) {
        (
            self.families.v4.unmapped_count(),
            self.families.v6.unmapped_count(),
        )
    }

    /// Number of distinct DS hosts (v4, v6) indexed.
    pub fn host_counts(&self) -> (usize, usize) {
        (self.families.v4.host_count(), self.families.v6.host_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_net_types::{Asn, Ipv4Prefix, Ipv6Prefix, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn fixture() -> (DnsSnapshot, Rib) {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two DS domains in the same prefixes, one v4-only domain.
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("198.51.1.2")],
            vec![a6("2600:1000::2")],
        );
        snap.merge(DomainId(2), vec![a4("198.51.9.9")], vec![]);
        (snap, rib)
    }

    #[test]
    fn groups_ds_domains_only() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        let v4 = index.domains(&p4("198.51.0.0/16")).unwrap();
        assert_eq!(v4.len(), 2, "v4-only domain must be excluded");
        assert!(v4.contains(&DomainId(0)) && v4.contains(&DomainId(1)));
        let v6 = index.domains(&p6("2600:1000::/32")).unwrap();
        assert_eq!(v6.len(), 2);
        assert_eq!(index.group_counts(), (1, 1));
        assert_eq!(index.host_counts(), (2, 2));
    }

    #[test]
    fn unmapped_addresses_counted() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        // No v6 announcement at all.
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (0, 1));
        assert_eq!(index.group_counts(), (1, 0));
    }

    #[test]
    fn unmapped_counts_both_families_and_all_addresses() {
        // An empty RIB maps nothing: every DS address of every domain must
        // be counted, none silently dropped.
        let rib = Rib::new();
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1"), a4("198.51.1.2")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("203.0.113.9")],
            vec![a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (3, 2));
        assert_eq!(index.group_counts(), (0, 0));
        assert_eq!(index.host_counts(), (0, 0));
    }

    #[test]
    fn unmapped_counts_mixed_with_mapped() {
        // One family announced, the other not; mapped addresses must not
        // leak into the unmapped tally.
        let mut rib = Rib::new();
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1"), a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (1, 0));
        assert_eq!(index.group_counts(), (0, 1));
    }

    #[test]
    fn domains_under_arbitrary_prefixes() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        // Both hosts are in 198.51.1.0/24.
        assert_eq!(index.domains_under(&p4("198.51.1.0/24")).len(), 2);
        // Narrower: only one host.
        let narrow = index.domains_under(&p4("198.51.1.1/32"));
        assert_eq!(narrow.len(), 1);
        assert!(narrow.contains(&DomainId(0)));
        assert!(index.occupied(&p4("198.51.1.0/24")));
        assert!(!index.occupied(&p4("198.51.2.0/24")));
    }

    #[test]
    fn domain_prefix_reverse_maps() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert!(index
            .prefixes_of_domain::<u32>(DomainId(0))
            .unwrap()
            .contains(&p4("198.51.0.0/16")));
        assert!(index.prefixes_of_domain::<u32>(DomainId(2)).is_none());
        assert!(index
            .prefixes_of_domain::<u128>(DomainId(1))
            .unwrap()
            .contains(&p6("2600:1000::/32")));
    }

    #[test]
    fn shared_host_accumulates_domains() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two domains on the same v4 host (shared hosting).
        snap.merge(
            DomainId(0),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(1),
            vec![a4("198.51.1.1")],
            vec![a6("2600:1000::2")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.host_counts(), (1, 2));
        assert_eq!(index.domains_under(&p4("198.51.1.1/32")).len(), 2);
    }

    #[test]
    fn arena_dedups_identical_domain_sets() {
        // Shared hosting: two v4 prefixes and one v6 prefix all carry the
        // same two-domain set → one interned set, shared by all three
        // groups (across families), plus dedup hits recorded.
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(1));
        rib.announce(p4("203.0.0.0/16"), Asn(2));
        rib.announce(p6("2600:1000::/32"), Asn(1));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        for d in [0u32, 1] {
            snap.merge(
                DomainId(d),
                vec![
                    a4(&format!("198.51.1.{}", d + 1)),
                    a4(&format!("203.0.1.{}", d + 1)),
                ],
                vec![a6(&format!("2600:1000::{}", d + 1))],
            );
        }
        let mut arena = crate::arena::SetArena::new();
        let index = PrefixDomainIndex::build_with_arena(&snap, &rib, &mut arena);
        let h1 = index.set_of(&p4("198.51.0.0/16")).unwrap();
        let h2 = index.set_of(&p4("203.0.0.0/16")).unwrap();
        let h6 = index.set_of(&p6("2600:1000::/32")).unwrap();
        assert_eq!(h1.id(), h2.id(), "equal sets share one id");
        assert_eq!(h1.id(), h6.id(), "interning is cross-family");
        assert_eq!(arena.len(), 1, "one distinct set in the arena");
        assert_eq!(arena.dedup_hits(), 2);

        // A later snapshot with the same sets reuses the arena slots.
        let again = PrefixDomainIndex::build_with_arena(&snap, &rib, &mut arena);
        assert_eq!(arena.len(), 1, "cross-snapshot reuse adds no slots");
        assert_eq!(
            again.set_of(&p4("198.51.0.0/16")).unwrap().id(),
            h1.id(),
            "ids are stable across snapshots sharing an arena"
        );
    }

    #[test]
    fn domain_sets_are_sorted_and_deduplicated() {
        let mut rib = Rib::new();
        rib.announce(p4("198.51.0.0/16"), Asn(64500));
        rib.announce(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // One domain with two v4 addresses in the same announced prefix:
        // the group set must still list the domain once.
        snap.merge(
            DomainId(7),
            vec![a4("198.51.1.1"), a4("198.51.2.2")],
            vec![a6("2600:1000::1")],
        );
        snap.merge(
            DomainId(3),
            vec![a4("198.51.3.3")],
            vec![a6("2600:1000::3")],
        );
        let index = PrefixDomainIndex::build(&snap, &rib);
        let group = index.domains(&p4("198.51.0.0/16")).unwrap();
        assert_eq!(group, &[DomainId(3), DomainId(7)]);
        let prefixes = index.prefixes_of_domain::<u32>(DomainId(7)).unwrap();
        assert_eq!(prefixes, &[p4("198.51.0.0/16")]);
    }
}
