//! Step 2 of the methodology: grouping DS domains by announced prefix.

use std::collections::{BTreeMap, BTreeSet};

use sibling_bgp::Rib;
use sibling_dns::{DnsSnapshot, DomainId};
use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};
use sibling_ptrie::PatriciaTrie;

/// The per-snapshot index the rest of the pipeline works from.
///
/// For every dual-stack domain, each address is mapped to its covering
/// BGP-announced prefix (longest-prefix match against the Routeviews-style
/// RIB of the same date, per §2.2); the index then holds:
///
/// * per-prefix DS-domain sets for both families (the sets whose Jaccard
///   values define sibling pairs);
/// * per-domain prefix sets (used by the stability analysis, Fig. 7);
/// * host tries keyed by the individual addresses with their domain sets —
///   the two "PyTricia trees" SP-Tuner traverses (§3.3).
#[derive(Default)]
pub struct PrefixDomainIndex {
    v4_groups: BTreeMap<Ipv4Prefix, BTreeSet<DomainId>>,
    v6_groups: BTreeMap<Ipv6Prefix, BTreeSet<DomainId>>,
    domain_v4: BTreeMap<DomainId, BTreeSet<Ipv4Prefix>>,
    domain_v6: BTreeMap<DomainId, BTreeSet<Ipv6Prefix>>,
    host_v4: PatriciaTrie<u32, BTreeSet<DomainId>>,
    host_v6: PatriciaTrie<u128, BTreeSet<DomainId>>,
    unmapped_v4: usize,
    unmapped_v6: usize,
}

impl PrefixDomainIndex {
    /// Builds the index from a snapshot's dual-stack domains and the RIB
    /// of the same date.
    ///
    /// Addresses without a covering announcement are counted in
    /// [`PrefixDomainIndex::unmapped counts`](Self::unmapped_counts) and
    /// otherwise ignored, mirroring the ~1% of OpenINTEL records the paper
    /// backfills or drops.
    pub fn build(snapshot: &DnsSnapshot, rib: &Rib) -> Self {
        let mut index = Self::default();
        for (domain, addrs) in snapshot.ds_domains() {
            for &addr in &addrs.v4 {
                match rib.lookup_v4(addr) {
                    Some(route) => {
                        index
                            .v4_groups
                            .entry(route.prefix)
                            .or_default()
                            .insert(domain);
                        index.domain_v4.entry(domain).or_default().insert(route.prefix);
                        let host = Ipv4Prefix::new(addr, 32).expect("/32 is valid");
                        match index.host_v4.get_mut(&host) {
                            Some(set) => {
                                set.insert(domain);
                            }
                            None => {
                                let mut set = BTreeSet::new();
                                set.insert(domain);
                                index.host_v4.insert(host, set);
                            }
                        }
                    }
                    None => index.unmapped_v4 += 1,
                }
            }
            for &addr in &addrs.v6 {
                match rib.lookup_v6(addr) {
                    Some(route) => {
                        index
                            .v6_groups
                            .entry(route.prefix)
                            .or_default()
                            .insert(domain);
                        index.domain_v6.entry(domain).or_default().insert(route.prefix);
                        let host = Ipv6Prefix::new(addr, 128).expect("/128 is valid");
                        match index.host_v6.get_mut(&host) {
                            Some(set) => {
                                set.insert(domain);
                            }
                            None => {
                                let mut set = BTreeSet::new();
                                set.insert(domain);
                                index.host_v6.insert(host, set);
                            }
                        }
                    }
                    None => index.unmapped_v6 += 1,
                }
            }
        }
        index
    }

    /// The DS domains grouped under an announced IPv4 prefix.
    pub fn v4_domains(&self, prefix: &Ipv4Prefix) -> Option<&BTreeSet<DomainId>> {
        self.v4_groups.get(prefix)
    }

    /// The DS domains grouped under an announced IPv6 prefix.
    pub fn v6_domains(&self, prefix: &Ipv6Prefix) -> Option<&BTreeSet<DomainId>> {
        self.v6_groups.get(prefix)
    }

    /// All announced IPv4 prefixes with their domain sets.
    pub fn v4_groups(&self) -> impl Iterator<Item = (&Ipv4Prefix, &BTreeSet<DomainId>)> {
        self.v4_groups.iter()
    }

    /// All announced IPv6 prefixes with their domain sets.
    pub fn v6_groups(&self) -> impl Iterator<Item = (&Ipv6Prefix, &BTreeSet<DomainId>)> {
        self.v6_groups.iter()
    }

    /// The announced IPv4 prefixes a domain resolves into.
    pub fn prefixes_of_domain_v4(&self, domain: DomainId) -> Option<&BTreeSet<Ipv4Prefix>> {
        self.domain_v4.get(&domain)
    }

    /// The announced IPv6 prefixes a domain resolves into.
    pub fn prefixes_of_domain_v6(&self, domain: DomainId) -> Option<&BTreeSet<Ipv6Prefix>> {
        self.domain_v6.get(&domain)
    }

    /// Union of the domain sets of all hosts under an *arbitrary* IPv4
    /// prefix (not necessarily announced) — the SP-Tuner set query.
    pub fn domains_under_v4(&self, prefix: &Ipv4Prefix) -> BTreeSet<DomainId> {
        let mut out = BTreeSet::new();
        for (_, set) in self.host_v4.covered(prefix) {
            out.extend(set.iter().copied());
        }
        out
    }

    /// Union of the domain sets of all hosts under an arbitrary IPv6
    /// prefix.
    pub fn domains_under_v6(&self, prefix: &Ipv6Prefix) -> BTreeSet<DomainId> {
        let mut out = BTreeSet::new();
        for (_, set) in self.host_v6.covered(prefix) {
            out.extend(set.iter().copied());
        }
        out
    }

    /// Whether any DS host lies under the given IPv4 prefix.
    pub fn occupied_v4(&self, prefix: &Ipv4Prefix) -> bool {
        self.host_v4.branch_is_occupied(prefix)
    }

    /// Whether any DS host lies under the given IPv6 prefix.
    pub fn occupied_v6(&self, prefix: &Ipv6Prefix) -> bool {
        self.host_v6.branch_is_occupied(prefix)
    }

    /// Number of distinct (v4, v6) announced prefixes with DS domains.
    pub fn group_counts(&self) -> (usize, usize) {
        (self.v4_groups.len(), self.v6_groups.len())
    }

    /// Addresses that had no covering announcement (v4, v6).
    pub fn unmapped_counts(&self) -> (usize, usize) {
        (self.unmapped_v4, self.unmapped_v6)
    }

    /// Number of distinct DS hosts (v4, v6) indexed.
    pub fn host_counts(&self) -> (usize, usize) {
        (self.host_v4.len(), self.host_v6.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_net_types::{Asn, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn fixture() -> (DnsSnapshot, Rib) {
        let mut rib = Rib::new();
        rib.announce_v4(p4("198.51.0.0/16"), Asn(64500));
        rib.announce_v6(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two DS domains in the same prefixes, one v4-only domain.
        snap.merge(DomainId(0), vec![a4("198.51.1.1")], vec![a6("2600:1000::1")]);
        snap.merge(DomainId(1), vec![a4("198.51.1.2")], vec![a6("2600:1000::2")]);
        snap.merge(DomainId(2), vec![a4("198.51.9.9")], vec![]);
        (snap, rib)
    }

    #[test]
    fn groups_ds_domains_only() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        let v4 = index.v4_domains(&p4("198.51.0.0/16")).unwrap();
        assert_eq!(v4.len(), 2, "v4-only domain must be excluded");
        assert!(v4.contains(&DomainId(0)) && v4.contains(&DomainId(1)));
        let v6 = index.v6_domains(&p6("2600:1000::/32")).unwrap();
        assert_eq!(v6.len(), 2);
        assert_eq!(index.group_counts(), (1, 1));
        assert_eq!(index.host_counts(), (2, 2));
    }

    #[test]
    fn unmapped_addresses_counted() {
        let mut rib = Rib::new();
        rib.announce_v4(p4("198.51.0.0/16"), Asn(64500));
        // No v6 announcement at all.
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        snap.merge(DomainId(0), vec![a4("198.51.1.1")], vec![a6("2600:1000::1")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.unmapped_counts(), (0, 1));
        assert_eq!(index.group_counts(), (1, 0));
    }

    #[test]
    fn domains_under_arbitrary_prefixes() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        // Both hosts are in 198.51.1.0/24.
        assert_eq!(index.domains_under_v4(&p4("198.51.1.0/24")).len(), 2);
        // Narrower: only one host.
        let narrow = index.domains_under_v4(&p4("198.51.1.1/32"));
        assert_eq!(narrow.len(), 1);
        assert!(narrow.contains(&DomainId(0)));
        assert!(index.occupied_v4(&p4("198.51.1.0/24")));
        assert!(!index.occupied_v4(&p4("198.51.2.0/24")));
    }

    #[test]
    fn domain_prefix_reverse_maps() {
        let (snap, rib) = fixture();
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert!(index
            .prefixes_of_domain_v4(DomainId(0))
            .unwrap()
            .contains(&p4("198.51.0.0/16")));
        assert!(index.prefixes_of_domain_v4(DomainId(2)).is_none());
        assert!(index
            .prefixes_of_domain_v6(DomainId(1))
            .unwrap()
            .contains(&p6("2600:1000::/32")));
    }

    #[test]
    fn shared_host_accumulates_domains() {
        let mut rib = Rib::new();
        rib.announce_v4(p4("198.51.0.0/16"), Asn(64500));
        rib.announce_v6(p6("2600:1000::/32"), Asn(64500));
        let mut snap = DnsSnapshot::new(MonthDate::new(2024, 9));
        // Two domains on the same v4 host (shared hosting).
        snap.merge(DomainId(0), vec![a4("198.51.1.1")], vec![a6("2600:1000::1")]);
        snap.merge(DomainId(1), vec![a4("198.51.1.1")], vec![a6("2600:1000::2")]);
        let index = PrefixDomainIndex::build(&snap, &rib);
        assert_eq!(index.host_counts(), (1, 2));
        assert_eq!(index.domains_under_v4(&p4("198.51.1.1/32")).len(), 2);
    }
}
