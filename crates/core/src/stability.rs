//! DS-domain visibility and address/prefix stability (§4.1, Fig. 7).

use std::collections::{BTreeMap, BTreeSet};

use sibling_dns::{DnsSnapshot, DomainId};

use crate::index::PrefixDomainIndex;

/// Histogram of how often DS domains appear across a series of snapshots.
///
/// `counts[k-1]` is the number of domains that are dual-stack-visible in
/// exactly `k` of the snapshots (the paper: ~40% in all 13, ~20% in one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibilityHistogram {
    /// Per-frequency domain counts, index 0 ↔ frequency 1.
    pub counts: Vec<usize>,
}

impl VisibilityHistogram {
    /// Total number of distinct DS domains observed.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Share of domains visible in all snapshots (the "consistent" set).
    pub fn consistent_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        *self.counts.last().unwrap_or(&0) as f64 / total as f64
    }

    /// Cumulative distribution over frequency (for the Fig. 7 left plot).
    pub fn cumulative_shares(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut acc = 0usize;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// Computes the visibility histogram over a series of snapshots.
pub fn visibility_histogram(snapshots: &[&DnsSnapshot]) -> VisibilityHistogram {
    let mut freq: BTreeMap<DomainId, usize> = BTreeMap::new();
    for snap in snapshots {
        for (domain, _) in snap.ds_domains() {
            *freq.entry(domain).or_insert(0) += 1;
        }
    }
    let mut counts = vec![0usize; snapshots.len()];
    for (_, k) in freq {
        counts[k - 1] += 1;
    }
    VisibilityHistogram { counts }
}

/// The DS domains visible in *every* snapshot of the series.
pub fn consistent_domains(snapshots: &[&DnsSnapshot]) -> BTreeSet<DomainId> {
    let mut iter = snapshots.iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    let mut consistent: BTreeSet<DomainId> = first.ds_domains().map(|(d, _)| d).collect();
    for snap in iter {
        let here: BTreeSet<DomainId> = snap.ds_domains().map(|(d, _)| d).collect();
        consistent = consistent.intersection(&here).copied().collect();
    }
    consistent
}

/// One comparison point of the Fig. 7 centre/right plots: how many of the
/// consistent DS domains kept the same prefixes / addresses between a past
/// snapshot and the reference snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityRow {
    /// The label of the past snapshot ("Day -1", "Month -3", …).
    pub label: String,
    /// Share of consistent domains whose IPv4 prefix set is unchanged.
    pub same_v4: f64,
    /// Share of consistent domains whose IPv6 prefix set is unchanged.
    pub same_v6: f64,
    /// Share with both families unchanged.
    pub same_both: f64,
}

/// Prefix-level stability: compares each past index against the reference.
pub fn prefix_stability(
    reference: &PrefixDomainIndex,
    past: &[(String, &PrefixDomainIndex)],
    consistent: &BTreeSet<DomainId>,
) -> Vec<StabilityRow> {
    past.iter()
        .map(|(label, index)| {
            let mut same_v4 = 0usize;
            let mut same_v6 = 0usize;
            let mut same_both = 0usize;
            for &d in consistent {
                let v4_ok =
                    reference.prefixes_of_domain::<u32>(d) == index.prefixes_of_domain::<u32>(d);
                let v6_ok =
                    reference.prefixes_of_domain::<u128>(d) == index.prefixes_of_domain::<u128>(d);
                same_v4 += v4_ok as usize;
                same_v6 += v6_ok as usize;
                same_both += (v4_ok && v6_ok) as usize;
            }
            let n = consistent.len().max(1) as f64;
            StabilityRow {
                label: label.clone(),
                same_v4: same_v4 as f64 / n,
                same_v6: same_v6 as f64 / n,
                same_both: same_both as f64 / n,
            }
        })
        .collect()
}

/// Address-level stability: same comparison on the raw resolved addresses.
pub fn address_stability(
    reference: &DnsSnapshot,
    past: &[(String, &DnsSnapshot)],
    consistent: &BTreeSet<DomainId>,
) -> Vec<StabilityRow> {
    past.iter()
        .map(|(label, snap)| {
            let mut same_v4 = 0usize;
            let mut same_v6 = 0usize;
            let mut same_both = 0usize;
            for &d in consistent {
                let (ref_e, past_e) = (reference.get(d), snap.get(d));
                let v4_ok = match (ref_e, past_e) {
                    (Some(a), Some(b)) => a.v4 == b.v4,
                    _ => false,
                };
                let v6_ok = match (ref_e, past_e) {
                    (Some(a), Some(b)) => a.v6 == b.v6,
                    _ => false,
                };
                same_v4 += v4_ok as usize;
                same_v6 += v6_ok as usize;
                same_both += (v4_ok && v6_ok) as usize;
            }
            let n = consistent.len().max(1) as f64;
            StabilityRow {
                label: label.clone(),
                same_v4: same_v4 as f64 / n,
                same_v6: same_v6 as f64 / n,
                same_both: same_both as f64 / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_bgp::Rib;
    use sibling_net_types::{Asn, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn snap(entries: &[(u32, &str, &str)]) -> DnsSnapshot {
        let mut s = DnsSnapshot::new(MonthDate::new(2024, 9));
        for (id, v4, v6) in entries {
            s.merge(DomainId(*id), vec![a4(v4)], vec![a6(v6)]);
        }
        s
    }

    #[test]
    fn visibility_counts() {
        let s1 = snap(&[(1, "8.8.8.8", "2600::1"), (2, "8.8.4.4", "2600::2")]);
        let s2 = snap(&[(1, "8.8.8.8", "2600::1")]);
        let s3 = snap(&[(1, "8.8.8.8", "2600::1"), (3, "9.9.9.9", "2600::3")]);
        let hist = visibility_histogram(&[&s1, &s2, &s3]);
        // d1: 3 times; d2: once; d3: once.
        assert_eq!(hist.counts, vec![2, 0, 1]);
        assert_eq!(hist.total(), 3);
        assert!((hist.consistent_share() - 1.0 / 3.0).abs() < 1e-12);
        let cum = hist.cumulative_shares();
        assert!((cum[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cum[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistent_domains_intersection() {
        let s1 = snap(&[(1, "8.8.8.8", "2600::1"), (2, "8.8.4.4", "2600::2")]);
        let s2 = snap(&[(1, "8.8.8.8", "2600::1")]);
        let consistent = consistent_domains(&[&s1, &s2]);
        assert_eq!(consistent.len(), 1);
        assert!(consistent.contains(&DomainId(1)));
        assert!(consistent_domains(&[]).is_empty());
    }

    #[test]
    fn address_stability_detects_changes() {
        let reference = snap(&[(1, "8.8.8.8", "2600::1"), (2, "8.8.4.4", "2600::2")]);
        let past = snap(&[(1, "8.8.8.8", "2600::1"), (2, "8.8.4.4", "2600::99")]);
        let consistent: BTreeSet<DomainId> = [DomainId(1), DomainId(2)].into_iter().collect();
        let rows = address_stability(&reference, &[("Month -1".into(), &past)], &consistent);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].same_v4 - 1.0).abs() < 1e-12);
        assert!((rows[0].same_v6 - 0.5).abs() < 1e-12);
        assert!((rows[0].same_both - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_stability_sees_through_address_changes() {
        // Addresses change inside the same announced prefix → prefix-stable.
        let mut rib = Rib::new();
        rib.announce(
            "8.8.8.0/24"
                .parse::<sibling_net_types::Ipv4Prefix>()
                .unwrap(),
            Asn(1),
        );
        rib.announce(
            "2600::/32"
                .parse::<sibling_net_types::Ipv6Prefix>()
                .unwrap(),
            Asn(1),
        );
        let reference = snap(&[(1, "8.8.8.8", "2600::1")]);
        let past = snap(&[(1, "8.8.8.9", "2600::2")]);
        let ref_index = PrefixDomainIndex::build(&reference, &rib);
        let past_index = PrefixDomainIndex::build(&past, &rib);
        let consistent: BTreeSet<DomainId> = [DomainId(1)].into_iter().collect();
        let rows = prefix_stability(&ref_index, &[("Year -1".into(), &past_index)], &consistent);
        assert!((rows[0].same_both - 1.0).abs() < 1e-12);
        // But address-level comparison sees the change.
        let rows = address_stability(&reference, &[("Year -1".into(), &past)], &consistent);
        assert_eq!(rows[0].same_both, 0.0);
    }
}
