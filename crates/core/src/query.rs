//! The read-side window query index behind the resident sibling service.
//!
//! A [`crate::BatchRun`]'s per-month [`SiblingSet`]s are *write-optimized*:
//! the engine produces them as sorted pair vectors, which is exactly what
//! batch consumers (stdout tables, experiment drivers) walk once and drop.
//! A resident query daemon has the opposite access pattern — millions of
//! small reads against state that never changes between publishes — so at
//! publish time the pair sets are **pivoted into query order** once:
//!
//! * **Point queries** (`siblings P4 P6 M`) binary-search the month's
//!   sorted pair vector — the same structure batch produced, reused as-is.
//! * **Top-k queries** (`partners P M k`) need pairs *per prefix, ranked
//!   by similarity* — an order batch never materializes. Each month gets
//!   a [`PostingTable`] per family: the sorted key column, a prefix-sum
//!   offset column, and one flat array of pair indices ranked by
//!   (similarity descending, partner ascending). Top-k is a binary search
//!   plus a `k`-bounded slice walk; nothing is re-sorted at query time.
//! * **History queries** (`pair P4 P6 from..to`) chain point lookups over
//!   the month range.
//! * **Stats queries** reuse the month-over-month change accounting the
//!   batch table prints, precomputed at publish time by the same
//!   [`PairLedger`] walk.
//!
//! The index is **immutable after publish** ([`WindowQueryIndex::publish`]
//! hands out an `Arc`), so any number of reader threads answer queries
//! with zero locks and zero allocation on the lookup path. Determinism:
//! every answer is derived from the exact pair vectors the batch run
//! produced — a point/history answer *is* the batch pair, and the top-k
//! ranking is a pure function of (similarity, partner prefix) with exact
//! rational comparison, so answers are bit-identical to recomputing the
//! window and filtering/sorting its output (property-tested below).

use std::fmt;
use std::sync::{Arc, RwLock};

use sibling_net_types::{AnyPrefix, Ipv4Prefix, Ipv6Prefix, MonthDate};

use crate::engine::BatchRun;
use crate::longitudinal::PairLedger;
use crate::pipeline::{SiblingPair, SiblingSet};

/// Why a window could not be pivoted into a [`WindowQueryIndex`].
///
/// Both variants are caller errors — [`crate::DetectEngine::run_window`]
/// always produces a non-empty, strictly ascending result vector — but a
/// serving path assembling windows from recovered state threads them as
/// typed errors instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryIndexError {
    /// The window has no months; there is nothing to publish.
    EmptyWindow,
    /// The window's month dates were not strictly ascending.
    UnsortedWindow,
}

impl fmt::Display for QueryIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyWindow => write!(f, "cannot publish an empty window"),
            Self::UnsortedWindow => write!(f, "window dates must be strictly ascending"),
        }
    }
}

impl std::error::Error for QueryIndexError {}

/// Per-prefix ranked pair postings of one month and one family.
///
/// `keys` is sorted; `offsets[i]..offsets[i+1]` delimits key `i`'s run in
/// `ranked`, whose entries index the month's pair vector in ranked order
/// (similarity descending — exact [`crate::Ratio`] comparison — then
/// partner prefix ascending, so ties have one canonical order).
#[derive(Debug, Default)]
struct PostingTable<P> {
    keys: Vec<P>,
    offsets: Vec<u32>,
    ranked: Vec<u32>,
}

impl<P: Ord + Copy> PostingTable<P> {
    /// Pivots `(key, pair index)` rows into the table. `entries` may
    /// arrive in any order; `rank` orders pair indices within a key run.
    fn build(mut entries: Vec<(P, u32)>, rank: impl Fn(u32, u32) -> std::cmp::Ordering) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| rank(a.1, b.1)));
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut ranked = Vec::with_capacity(entries.len());
        for (key, pair) in entries {
            if keys.last() != Some(&key) {
                keys.push(key);
                offsets.push(ranked.len() as u32);
            }
            ranked.push(pair);
        }
        offsets.push(ranked.len() as u32);
        Self {
            keys,
            offsets,
            ranked,
        }
    }

    /// The ranked pair-index run of `key` (empty if the prefix has no
    /// pairs this month).
    fn run(&self, key: &P) -> &[u32] {
        match self.keys.binary_search(key) {
            Ok(i) => &self.ranked[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }
}

/// Publish-time aggregates of one month — the columns of the batch
/// stdout table, precomputed so a `stats` query is a field read.
#[derive(Debug, Clone, Copy)]
pub struct MonthStats {
    /// The month.
    pub date: MonthDate,
    /// Sibling pairs detected.
    pub pairs: usize,
    /// Distinct IPv4 prefixes participating in pairs.
    pub v4_prefixes: usize,
    /// Distinct IPv6 prefixes participating in pairs.
    pub v6_prefixes: usize,
    /// Share of pairs with similarity exactly 1.
    pub perfect_share: f64,
    /// `(new, unchanged, changed)` vs the previous month; `None` for the
    /// window's first month (nothing to compare against).
    pub delta: Option<(usize, usize, usize)>,
}

impl MonthStats {
    /// Renders the month exactly as the `batch` subcommand's stdout table
    /// row — the one formatter both paths share, so a served `stats`
    /// answer can be diffed verbatim against batch output.
    pub fn batch_row(&self) -> String {
        let (new, unchanged, changed) = match self.delta {
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
            Some((n, u, c)) => (n.to_string(), u.to_string(), c.to_string()),
        };
        format!(
            "{}   {:>7} {:>8} {:>8} {:>8.1}% {:>6} {:>9} {:>8}",
            self.date,
            self.pairs,
            self.v4_prefixes,
            self.v6_prefixes,
            self.perfect_share * 100.0,
            new,
            unchanged,
            changed
        )
    }

    /// The header line matching [`MonthStats::batch_row`].
    pub fn batch_header() -> String {
        format!(
            "{:<9} {:>7} {:>8} {:>8} {:>9} {:>6} {:>9} {:>8}",
            "month", "pairs", "v4pfx", "v6pfx", "perfect%", "new", "unchanged", "changed"
        )
    }
}

/// One month's pivoted read structures.
#[derive(Debug)]
struct MonthPostings {
    /// The month's sibling set exactly as the batch run produced it
    /// (sorted by `(v4, v6)` — the point-query structure).
    set: SiblingSet,
    stats: MonthStats,
    v4: PostingTable<Ipv4Prefix>,
    v6: PostingTable<Ipv6Prefix>,
}

impl MonthPostings {
    fn build(date: MonthDate, set: SiblingSet, ledger: &mut PairLedger, first: bool) -> Self {
        let pairs = set.as_slice();
        let mut v4_rows: Vec<(Ipv4Prefix, u32)> = Vec::with_capacity(pairs.len());
        let mut v6_rows: Vec<(Ipv6Prefix, u32)> = Vec::with_capacity(pairs.len());
        for (i, pair) in pairs.iter().enumerate() {
            v4_rows.push((pair.v4, i as u32));
            v6_rows.push((pair.v6, i as u32));
        }
        // Rank within a key run: similarity descending (exact rational
        // comparison), then partner ascending. Both families tie-break on
        // the partner side, giving every run one canonical order.
        let v4 = PostingTable::build(v4_rows, |a, b| {
            let (a, b) = (&pairs[a as usize], &pairs[b as usize]);
            b.similarity.cmp(&a.similarity).then(a.v6.cmp(&b.v6))
        });
        let v6 = PostingTable::build(v6_rows, |a, b| {
            let (a, b) = (&pairs[a as usize], &pairs[b as usize]);
            b.similarity.cmp(&a.similarity).then(a.v4.cmp(&b.v4))
        });
        let delta = ledger.advance(&set);
        let delta = if first {
            None
        } else {
            let (new, unchanged, changed, _) = delta.counts();
            Some((new, unchanged, changed))
        };
        let stats = MonthStats {
            date,
            pairs: set.len(),
            v4_prefixes: v4.keys.len(),
            v6_prefixes: v6.keys.len(),
            perfect_share: set.perfect_match_share(),
            delta,
        };
        Self { set, stats, v4, v6 }
    }
}

/// A read-only view of one loaded month (see [`WindowQueryIndex::month`]).
#[derive(Debug, Clone, Copy)]
pub struct MonthView<'a> {
    postings: &'a MonthPostings,
}

impl<'a> MonthView<'a> {
    /// The month's full sibling set, as batch produced it.
    pub fn set(&self) -> &'a SiblingSet {
        &self.postings.set
    }

    /// Publish-time aggregates (the batch table row).
    pub fn stats(&self) -> &'a MonthStats {
        &self.postings.stats
    }

    /// Point query: the pair `(v4, v6)` if it is a sibling pair this
    /// month — the exact [`SiblingPair`] of the batch run.
    pub fn point(&self, v4: &Ipv4Prefix, v6: &Ipv6Prefix) -> Option<&'a SiblingPair> {
        self.postings.set.get(v4, v6)
    }

    /// Top-k query: up to `k` partners of `prefix` (either family),
    /// ranked by similarity descending with ascending-partner
    /// tie-breaks. `k = 0` returns the full ranked run.
    pub fn partners(&self, prefix: &AnyPrefix, k: usize) -> impl Iterator<Item = &'a SiblingPair> {
        let run = match prefix {
            AnyPrefix::V4(p) => self.postings.v4.run(p),
            AnyPrefix::V6(p) => self.postings.v6.run(p),
        };
        let k = if k == 0 { run.len() } else { k.min(run.len()) };
        let pairs = self.postings.set.as_slice();
        run[..k].iter().map(move |&i| &pairs[i as usize])
    }
}

/// The immutable-after-publish window query index (module docs).
#[derive(Debug)]
pub struct WindowQueryIndex {
    months: Vec<MonthDate>,
    monthly: Vec<MonthPostings>,
}

impl WindowQueryIndex {
    /// Pivots a batch run's results into the read index. The run's dates
    /// must be strictly ascending (what [`crate::DetectEngine::run_window`]
    /// produces); an empty or out-of-order run is a caller error.
    pub fn build(results: &[(MonthDate, SiblingSet)]) -> Result<Self, QueryIndexError> {
        if results.is_empty() {
            return Err(QueryIndexError::EmptyWindow);
        }
        if results.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(QueryIndexError::UnsortedWindow);
        }
        let mut ledger = PairLedger::new();
        let months: Vec<MonthDate> = results.iter().map(|(d, _)| *d).collect();
        let monthly = results
            .iter()
            .enumerate()
            .map(|(i, (date, set))| MonthPostings::build(*date, set.clone(), &mut ledger, i == 0))
            .collect();
        Ok(Self { months, monthly })
    }

    /// [`WindowQueryIndex::build`] + `Arc` publication — what a server
    /// hands its reader threads. Readers clone the `Arc` once at spawn
    /// and then share the immutable index lock-free.
    pub fn publish(run: &BatchRun) -> Result<Arc<Self>, QueryIndexError> {
        Ok(Arc::new(Self::build(&run.results)?))
    }

    /// The loaded months, ascending.
    pub fn months(&self) -> &[MonthDate] {
        &self.months
    }

    /// The inclusive `(first, last)` bounds of the loaded window.
    pub fn bounds(&self) -> (MonthDate, MonthDate) {
        (
            *self.months.first().expect("non-empty by construction"),
            *self.months.last().expect("non-empty by construction"),
        )
    }

    /// The month view at `date`, `None` if that month is not loaded.
    pub fn month(&self, date: MonthDate) -> Option<MonthView<'_>> {
        self.months.binary_search(&date).ok().map(|i| MonthView {
            postings: &self.monthly[i],
        })
    }

    /// History query: the pair's trajectory over the loaded months
    /// intersecting `from..=to`, yielding only the months where the pair
    /// is a sibling pair (each item the exact batch [`SiblingPair`]).
    pub fn history<'a>(
        &'a self,
        v4: &'a Ipv4Prefix,
        v6: &'a Ipv6Prefix,
        from: MonthDate,
        to: MonthDate,
    ) -> impl Iterator<Item = (MonthDate, &'a SiblingPair)> {
        let lo = self.months.partition_point(|d| *d < from);
        let hi = self.months.partition_point(|d| *d <= to);
        self.months[lo..hi]
            .iter()
            .zip(&self.monthly[lo..hi])
            .filter_map(move |(date, postings)| postings.set.get(v4, v6).map(|p| (*date, p)))
    }

    /// Per-month publish-time aggregates, ascending — the batch table.
    pub fn stats(&self) -> impl Iterator<Item = &MonthStats> {
        self.monthly.iter().map(|m| &m.stats)
    }

    /// Total pairs across all loaded months (capacity reporting).
    pub fn total_pairs(&self) -> usize {
        self.monthly.iter().map(|m| m.set.len()).sum()
    }
}

/// The epoch-numbered publication cell of a live window.
///
/// Writers build a complete replacement [`WindowQueryIndex`] off to the
/// side and install it with one [`PublishedWindow::swap`]; readers
/// [`PublishedWindow::pin`] once per request and then answer lock-free
/// against the pinned, immutable index. The lock is held only for the
/// duration of an `Arc` clone or store — never across a query or a
/// rebuild — so publication never pauses readers. Retired generations
/// stay alive exactly as long as some reader still holds their pin, then
/// drop with the last `Arc`.
///
/// Epochs are monotonic: the first published generation is epoch 1 and
/// every swap increments it, so clients can assert read consistency by
/// comparing the `epoch` verb's answer across requests.
#[derive(Debug)]
pub struct PublishedWindow {
    current: RwLock<(u64, Arc<WindowQueryIndex>)>,
}

impl PublishedWindow {
    /// Publishes `index` as epoch 1.
    pub fn new(index: Arc<WindowQueryIndex>) -> Self {
        Self::new_at(1, index)
    }

    /// Publishes `index` at a caller-chosen starting epoch (≥ 1).
    ///
    /// Recovery uses this to make epochs durable: a live daemon derives
    /// its starting epoch from the ingest journal's persistent sequence
    /// count (`1 + last_seq`), so the numbers a replication feed hands
    /// out stay monotonic across restarts and compactions instead of
    /// rewinding to 1.
    pub fn new_at(epoch: u64, index: Arc<WindowQueryIndex>) -> Self {
        Self {
            current: RwLock::new((epoch.max(1), index)),
        }
    }

    /// Pins the current generation: the `(epoch, index)` pair a reader
    /// answers one request against. Cheap (one `Arc` clone under a brief
    /// read lock).
    pub fn pin(&self) -> PinnedEpoch {
        let guard = self.current.read().expect("published window poisoned");
        PinnedEpoch {
            epoch: guard.0,
            index: Arc::clone(&guard.1),
        }
    }

    /// The current epoch number without pinning the index.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("published window poisoned").0
    }

    /// Atomically installs `index` as the next generation and returns
    /// its epoch number. Readers pinned on the prior generation keep
    /// answering against it unaffected.
    pub fn swap(&self, index: Arc<WindowQueryIndex>) -> u64 {
        let mut guard = self.current.write().expect("published window poisoned");
        guard.0 += 1;
        guard.1 = index;
        guard.0
    }

    /// Replaces the index **without** advancing the epoch.
    ///
    /// Recovery-only: journal replay applies every recovered delta and
    /// then installs the final index at the epoch the journal already
    /// accounts for — the replayed deltas consumed their epoch numbers
    /// when they were first accepted, before the crash. Never used while
    /// readers are being served.
    pub fn republish(&self, index: Arc<WindowQueryIndex>) {
        let mut guard = self.current.write().expect("published window poisoned");
        guard.1 = index;
    }
}

/// One reader's pinned `(epoch, index)` pair (see [`PublishedWindow`]).
#[derive(Debug, Clone)]
pub struct PinnedEpoch {
    epoch: u64,
    index: Arc<WindowQueryIndex>,
}

impl PinnedEpoch {
    /// The epoch this pin was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned immutable index.
    pub fn index(&self) -> &Arc<WindowQueryIndex> {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longitudinal::compare;
    use crate::metrics::Ratio;

    fn pair(v4: &str, v6: &str, num: u64, den: u64) -> SiblingPair {
        SiblingPair {
            v4: v4.parse().unwrap(),
            v6: v6.parse().unwrap(),
            similarity: Ratio::new(num, den),
            shared_domains: num,
            v4_domains: den,
            v6_domains: den,
        }
    }

    fn month(k: u8) -> MonthDate {
        MonthDate::new(2024, k)
    }

    fn two_month_fixture() -> WindowQueryIndex {
        let m1 = SiblingSet::from_pairs(vec![
            pair("10.0.0.0/24", "2600:1::/48", 1, 1),
            pair("10.0.0.0/24", "2600:2::/48", 1, 2),
            pair("10.0.1.0/24", "2600:2::/48", 1, 2),
        ]);
        let m2 = SiblingSet::from_pairs(vec![
            pair("10.0.0.0/24", "2600:1::/48", 1, 2),
            pair("10.0.1.0/24", "2600:2::/48", 1, 2),
            pair("10.0.2.0/24", "2600:3::/48", 1, 1),
        ]);
        WindowQueryIndex::build(&[(month(1), m1), (month(2), m2)]).unwrap()
    }

    #[test]
    fn point_returns_exact_batch_pair() {
        let index = two_month_fixture();
        let view = index.month(month(1)).unwrap();
        let p = view
            .point(
                &"10.0.0.0/24".parse().unwrap(),
                &"2600:2::/48".parse().unwrap(),
            )
            .unwrap();
        assert_eq!(p.similarity, Ratio::new(1, 2));
        assert!(view
            .point(
                &"10.0.9.0/24".parse().unwrap(),
                &"2600:2::/48".parse().unwrap()
            )
            .is_none());
        assert!(index.month(month(3)).is_none());
    }

    #[test]
    fn partners_ranked_by_similarity_then_partner() {
        let index = two_month_fixture();
        let view = index.month(month(1)).unwrap();
        let p4: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let got: Vec<_> = view
            .partners(&AnyPrefix::V4(p4), 0)
            .map(|p| (p.v6.to_string(), p.similarity))
            .collect();
        assert_eq!(
            got,
            vec![
                ("2600:1::/48".to_string(), Ratio::ONE),
                ("2600:2::/48".to_string(), Ratio::new(1, 2)),
            ]
        );
        // k truncates; the v6 side ranks by v4 partner.
        assert_eq!(view.partners(&AnyPrefix::V4(p4), 1).count(), 1);
        let p6: Ipv6Prefix = "2600:2::/48".parse().unwrap();
        let got: Vec<_> = view
            .partners(&AnyPrefix::V6(p6), 10)
            .map(|p| p.v4.to_string())
            .collect();
        assert_eq!(got, vec!["10.0.0.0/24", "10.0.1.0/24"]);
        // Unknown prefix: empty run, not an error.
        assert_eq!(
            view.partners(&AnyPrefix::V4("9.9.9.0/24".parse().unwrap()), 5)
                .count(),
            0
        );
    }

    #[test]
    fn history_skips_absent_months_and_clamps() {
        let index = two_month_fixture();
        let v4: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let v6: Ipv6Prefix = "2600:1::/48".parse().unwrap();
        let got: Vec<_> = index
            .history(&v4, &v6, month(1), month(12))
            .map(|(d, p)| (d, p.similarity))
            .collect();
        assert_eq!(
            got,
            vec![(month(1), Ratio::ONE), (month(2), Ratio::new(1, 2))]
        );
        // A pair absent in one month is simply skipped there.
        let v6b: Ipv6Prefix = "2600:2::/48".parse().unwrap();
        let got: Vec<_> = index.history(&v4, &v6b, month(1), month(2)).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, month(1));
        // Disjoint range: empty.
        assert_eq!(index.history(&v4, &v6, month(5), month(12)).count(), 0);
    }

    #[test]
    fn stats_match_ledger_walk() {
        let index = two_month_fixture();
        let stats: Vec<&MonthStats> = index.stats().collect();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].pairs, 3);
        assert!(stats[0].delta.is_none());
        // Month 2 vs month 1: 1 new, 1 unchanged, 1 changed.
        assert_eq!(stats[1].delta, Some((1, 1, 1)));
        assert_eq!(stats[1].v4_prefixes, 3);
        assert_eq!(stats[1].v6_prefixes, 3);
        let row = stats[0].batch_row();
        assert!(row.starts_with("2024-01"));
        assert!(row.contains('-'));
        assert!(MonthStats::batch_header().starts_with("month"));
    }

    #[test]
    fn build_rejects_empty_and_unsorted() {
        assert_eq!(
            WindowQueryIndex::build(&[]).unwrap_err(),
            QueryIndexError::EmptyWindow
        );
        let set = SiblingSet::from_pairs(vec![]);
        assert_eq!(
            WindowQueryIndex::build(&[(month(2), set.clone()), (month(1), set)]).unwrap_err(),
            QueryIndexError::UnsortedWindow
        );
        assert!(QueryIndexError::EmptyWindow.to_string().contains("empty"));
        assert!(QueryIndexError::UnsortedWindow
            .to_string()
            .contains("ascending"));
    }

    #[test]
    fn published_window_swaps_epochs_without_disturbing_pins() {
        let first = Arc::new(two_month_fixture());
        let published = PublishedWindow::new(Arc::clone(&first));
        assert_eq!(published.epoch(), 1);
        let pin = published.pin();
        assert_eq!(pin.epoch(), 1);
        assert_eq!(pin.index().months().len(), 2);

        let next = SiblingSet::from_pairs(vec![pair("10.0.7.0/24", "2600:7::/48", 1, 1)]);
        let replacement = Arc::new(
            WindowQueryIndex::build(&[(month(1), next.clone()), (month(3), next)]).unwrap(),
        );
        assert_eq!(published.swap(replacement), 2);
        assert_eq!(published.epoch(), 2);
        // The old pin still answers against its generation.
        assert_eq!(pin.epoch(), 1);
        assert!(Arc::ptr_eq(pin.index(), &first));
        assert_eq!(pin.index().months(), &[month(1), month(2)]);
        // A fresh pin sees the new generation.
        let fresh = published.pin();
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(fresh.index().months(), &[month(1), month(3)]);
    }

    /// Property: every query family answers bit-identically to a
    /// recompute from the month pair sets — top-k equals filter + stable
    /// rank of the full set, point/history equal direct membership, and
    /// stats equal the stateless `compare` walk.
    #[test]
    fn prop_queries_equal_recompute_reference() {
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        // Months of (v4 id, v6 id, numerator) rows over a small id space
        // so prefixes recur within and across months.
        let month_rows = || proptest::collection::vec((0u32..5, 0u32..5, 1u64..5), 0..16);
        let strategy = proptest::collection::vec(month_rows(), 1..5);
        runner
            .run(&strategy, |months_rows| {
                let sets: Vec<(MonthDate, SiblingSet)> = months_rows
                    .iter()
                    .enumerate()
                    .map(|(i, rows)| {
                        let pairs = rows
                            .iter()
                            .map(|(a, b, num)| {
                                pair(
                                    &format!("10.0.{a}.0/24"),
                                    &format!("2600:{}::/48", b + 1),
                                    *num,
                                    4,
                                )
                            })
                            .collect();
                        (month(i as u8 + 1), SiblingSet::from_pairs(pairs))
                    })
                    .collect();
                let index = WindowQueryIndex::build(&sets).unwrap();

                let mut prev = SiblingSet::from_pairs(vec![]);
                for (i, (date, set)) in sets.iter().enumerate() {
                    let view = index.month(*date).unwrap();
                    // Point: every batch pair answers with itself; a
                    // non-pair answers None.
                    for p in set.iter() {
                        let got = view.point(&p.v4, &p.v6).unwrap();
                        assert_eq!((got.v4, got.v6), (p.v4, p.v6));
                        assert_eq!(got.similarity, p.similarity);
                        assert_eq!(got.shared_domains, p.shared_domains);
                    }
                    assert!(view
                        .point(
                            &"9.9.9.0/24".parse().unwrap(),
                            &"2600:1::/48".parse().unwrap()
                        )
                        .is_none());
                    // Top-k (both families, several k): reference = filter
                    // the full set, sort by (sim desc, partner asc), take k.
                    for a in 0..5u32 {
                        let p4: Ipv4Prefix = format!("10.0.{a}.0/24").parse().unwrap();
                        let mut want: Vec<&SiblingPair> =
                            set.iter().filter(|p| p.v4 == p4).collect();
                        want.sort_by(|x, y| y.similarity.cmp(&x.similarity).then(x.v6.cmp(&y.v6)));
                        for k in [0usize, 1, 2, 100] {
                            let got: Vec<&SiblingPair> =
                                view.partners(&AnyPrefix::V4(p4), k).collect();
                            let take = if k == 0 {
                                want.len()
                            } else {
                                k.min(want.len())
                            };
                            assert_eq!(got.len(), take);
                            for (g, w) in got.iter().zip(&want[..take]) {
                                assert_eq!((g.v4, g.v6), (w.v4, w.v6));
                                assert_eq!(g.similarity, w.similarity);
                            }
                        }
                    }
                    for b in 0..5u32 {
                        let p6: Ipv6Prefix = format!("2600:{}::/48", b + 1).parse().unwrap();
                        let mut want: Vec<&SiblingPair> =
                            set.iter().filter(|p| p.v6 == p6).collect();
                        want.sort_by(|x, y| y.similarity.cmp(&x.similarity).then(x.v4.cmp(&y.v4)));
                        let got: Vec<&SiblingPair> = view.partners(&AnyPrefix::V6(p6), 0).collect();
                        assert_eq!(got.len(), want.len());
                        for (g, w) in got.iter().zip(&want) {
                            assert_eq!((g.v4, g.v6), (w.v4, w.v6));
                        }
                    }
                    // Stats: equal to the stateless compare walk.
                    let stats = view.stats();
                    assert_eq!(stats.pairs, set.len());
                    assert_eq!(
                        (stats.v4_prefixes, stats.v6_prefixes),
                        set.unique_prefix_counts()
                    );
                    if i == 0 {
                        assert!(stats.delta.is_none());
                    } else {
                        let want = compare(&prev, set);
                        let (n, u, c, _) = want.counts();
                        assert_eq!(stats.delta, Some((n, u, c)));
                    }
                    prev = set.clone();
                }
                // History: for every pair key seen anywhere, the history
                // over the full window equals the per-month point chain.
                for a in 0..5u32 {
                    for b in 0..5u32 {
                        let v4: Ipv4Prefix = format!("10.0.{a}.0/24").parse().unwrap();
                        let v6: Ipv6Prefix = format!("2600:{}::/48", b + 1).parse().unwrap();
                        let (lo, hi) = index.bounds();
                        let got: Vec<_> = index.history(&v4, &v6, lo, hi).collect();
                        let want: Vec<_> = sets
                            .iter()
                            .filter_map(|(d, s)| s.get(&v4, &v6).map(|p| (*d, p)))
                            .collect();
                        assert_eq!(got.len(), want.len());
                        for ((gd, gp), (wd, wp)) in got.iter().zip(&want) {
                            assert_eq!(gd, wd);
                            assert_eq!(gp.similarity, wp.similarity);
                        }
                    }
                }
                Ok(())
            })
            .unwrap();
    }
}
