//! Zero-copy world store — the `SIBWORLD` on-disk format.
//!
//! The snapshot store (`SIBSNAP`, in `sibling-dns`) eliminated per-run DNS
//! snapshot regeneration; this crate does the same for everything *else* a
//! window run needs from the generated world: the dated RIB archive
//! (per-month, per-family announce tables), both AS→organization era
//! tables, the hypergiant/CDN list, and the ASdb business-type dataset.
//! With both stores present, `batch --store` runs perform **zero**
//! `World::generate` calls.
//!
//! # File layout
//!
//! One file, `world.sibworld`, beside the snapshot files. A 64-byte header
//! (magic `SIBWORLD`, version, endianness tag, worldgen-config
//! fingerprint, whole-file FNV-1a checksum with its own field skipped,
//! file length, section counts) is followed by 16-byte-aligned sections:
//!
//! ```text
//! months     M × { date, table }           which table serves each month
//! table dir  T × { v4, v6, origins, _ }    per-table record counts
//! era dir    2 × { pairs, orgs }           CAIDA then Chen et al.
//! tables     T × ( RibRecord4[] ∥ RibRecord6[] ∥ u32 origin pool )
//! eras       2 × ( AsnOrgRecord[] ∥ OrgNameRecord[] )
//! hg/cdn     HgRecord[]
//! asdb       AsdbRecord[]
//! names      UTF-8 blob (all org/list names, range-referenced)
//! ```
//!
//! RIB tables are **deduplicated**: months sharing one announce table (the
//! common case — the archive enters one `Arc<Rib>` per churn epoch) share
//! one stored table, referenced by index from the month directory.
//!
//! # Binary search over mmap
//!
//! Announce tables are sorted arrays of the len-first typed records from
//! `sibling-net-types` ([`RibRecord4`]/[`RibRecord6`]): the prefix length
//! precedes the network bits, so raw-field order equals `(length, bits)`
//! order and each length's records form a contiguous, bits-sorted run.
//! [`StoredRib`] resolves an address by walking the present lengths
//! longest-first and binary-searching the masked address inside that
//! length's run — directly over the mapped bytes, no trie, no decode.
//!
//! Every structural invariant the search relies on (strictly sorted keys,
//! canonical prefixes, in-bounds origin ranges, valid UTF-8 name ranges)
//! is validated **once at open**; the record views afterwards are
//! infallible. All `unsafe` stays in the vendored `mapfile` crate — this
//! crate is `forbid(unsafe_code)` and reinterprets bytes only through
//! `mapfile`'s checked casts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mapfile::{record_bytes, MapFile};
use sibling_as_org::{
    AsOrgMap, AsOrgSource, AsdbDataset, BusinessType, HgCdnClass, HgCdnList, MappingEra, OrgId,
};
use sibling_bgp::{Rib, RibArchive, RibSource};
use sibling_dns::wire::{self, put_u32, put_u64, read_u32, read_u64, ENDIAN_TAG};
use sibling_dns::{LoadMode, StoreError};
use sibling_net_types::{
    AddressFamily, Asn, Bits, IpFamily, MonthDate, Prefix, RibRecord4, RibRecord6,
};

const MAGIC: &[u8; 8] = b"SIBWORLD";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 64;
/// Byte range of the checksum field within the header (skipped when
/// checksumming).
const CHECKSUM_RANGE: std::ops::Range<usize> = 24..32;
/// The store file's name inside a store directory.
pub const WORLD_FILE_NAME: &str = "world.sibworld";

mapfile::plain_struct! {
    /// Month directory entry: which stored table serves a month.
    struct MonthRecord {
        date: u32,
        table: u32,
    }
}

mapfile::plain_struct! {
    /// Table directory entry: per-table record counts.
    struct TableDirRecord {
        v4_count: u32,
        v6_count: u32,
        origins_count: u32,
        reserved: u32,
    }
}

mapfile::plain_struct! {
    /// Era directory entry: per-era assignment and org-name counts.
    struct EraDirRecord {
        pair_count: u32,
        org_count: u32,
    }
}

mapfile::plain_struct! {
    /// One AS → organization assignment.
    struct AsnOrgRecord {
        asn: u32,
        org: u32,
    }
}

mapfile::plain_struct! {
    /// One organization display name (range into the names blob).
    struct OrgNameRecord {
        org: u32,
        name_start: u32,
        name_end: u32,
        reserved: u32,
    }
}

mapfile::plain_struct! {
    /// One hypergiant/CDN list entry.
    struct HgRecord {
        name_start: u32,
        name_end: u32,
        class: u32,
        reserved: u32,
    }
}

mapfile::plain_struct! {
    /// One ASdb entry: a bitmask over the 17 business categories.
    struct AsdbRecord {
        asn: u32,
        mask: u32,
    }
}

fn class_code(class: HgCdnClass) -> u32 {
    match class {
        HgCdnClass::Hypergiant => 0,
        HgCdnClass::Cdn => 1,
        HgCdnClass::Both => 2,
        HgCdnClass::Other => 3,
    }
}

fn class_from_code(code: u32) -> Option<HgCdnClass> {
    match code {
        0 => Some(HgCdnClass::Hypergiant),
        1 => Some(HgCdnClass::Cdn),
        2 => Some(HgCdnClass::Both),
        3 => Some(HgCdnClass::Other),
        _ => None,
    }
}

fn business_mask(types: &[BusinessType]) -> u32 {
    let mut mask = 0u32;
    for t in types {
        let pos = BusinessType::ALL
            .iter()
            .position(|c| c == t)
            .expect("ALL lists every category");
        mask |= 1 << pos;
    }
    mask
}

fn business_types(mask: u32) -> Vec<BusinessType> {
    BusinessType::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, t)| *t)
        .collect()
}

/// Deduplicating builder for the shared names blob.
#[derive(Default)]
struct NameBlob {
    bytes: Vec<u8>,
    seen: BTreeMap<String, (u32, u32)>,
}

impl NameBlob {
    fn intern(&mut self, name: &str) -> (u32, u32) {
        if let Some(&range) = self.seen.get(name) {
            return range;
        }
        let start = self.bytes.len() as u32;
        self.bytes.extend_from_slice(name.as_bytes());
        let range = (start, self.bytes.len() as u32);
        self.seen.insert(name.to_string(), range);
        range
    }
}

/// One serialized announce table (both families plus the origin pool).
struct TableImage {
    v4: Vec<RibRecord4>,
    v6: Vec<RibRecord6>,
    origins: Vec<u32>,
}

fn encode_table(rib: &Rib) -> TableImage {
    let mut origins: Vec<u32> = Vec::new();
    let mut push_origins = |asns: &[Asn]| -> std::ops::Range<u32> {
        let start = origins.len() as u32;
        origins.extend(asns.iter().map(|a| a.0));
        start..origins.len() as u32
    };
    let mut v4_prefixes: Vec<_> = rib.prefixes::<u32>().collect();
    v4_prefixes.sort_by_key(|p| (p.len(), p.bits()));
    let v4 = v4_prefixes
        .into_iter()
        .map(|p| {
            let info = rib.origin_of(&p).expect("announced prefix has origins");
            RibRecord4::new(p, push_origins(&info.origins))
        })
        .collect();
    let mut v6_prefixes: Vec<_> = rib.prefixes::<u128>().collect();
    v6_prefixes.sort_by_key(|p| (p.len(), p.bits()));
    let v6 = v6_prefixes
        .into_iter()
        .map(|p| {
            let info = rib.origin_of(&p).expect("announced prefix has origins");
            RibRecord6::new(p, push_origins(&info.origins))
        })
        .collect();
    TableImage { v4, v6, origins }
}

fn pad16(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(wire::ALIGN as usize) {
        buf.push(0);
    }
}

fn append_records<T: mapfile::Plain>(buf: &mut Vec<u8>, records: &[T]) {
    pad16(buf);
    for r in records {
        buf.extend_from_slice(record_bytes(r));
    }
}

/// The world store: writer and opener for `world.sibworld` files.
///
/// A store directory (usually shared with the [`sibling_dns::SnapshotStore`])
/// holds at most one world file; [`WorldStore::exists`] is the auto-detect
/// check `batch --store` uses.
pub struct WorldStore;

impl WorldStore {
    /// The world file's path inside store directory `dir`.
    pub fn path_of(dir: &Path) -> PathBuf {
        dir.join(WORLD_FILE_NAME)
    }

    /// Whether `dir` holds a world file.
    pub fn exists(dir: &Path) -> bool {
        Self::path_of(dir).is_file()
    }

    /// Serializes the world's routing and organization tables into
    /// `dir/world.sibworld`, stamped with `fingerprint` (the worldgen
    /// configuration's [`fingerprint`](#) — the loader refuses files
    /// written under a different configuration).
    ///
    /// Months in `archive` that share one table (`Arc::ptr_eq`) share one
    /// stored table. The write is atomic: a hidden temp file is renamed
    /// into place, so a concurrent reader never maps a half-written file.
    pub fn write(
        dir: &Path,
        fingerprint: u64,
        archive: &RibArchive<Arc<Rib>>,
        as_org: &AsOrgSource,
        asdb: &AsdbDataset,
        hg_cdn: &HgCdnList,
    ) -> Result<PathBuf, StoreError> {
        fs::create_dir_all(dir).map_err(StoreError::Io)?;

        // Deduplicate announce tables by identity, preserving first-seen
        // order so equal worlds serialize byte-identically.
        let mut tables: Vec<Arc<Rib>> = Vec::new();
        let mut months: Vec<MonthRecord> = Vec::new();
        for date in archive.dates() {
            let rib = archive.at(date).expect("listed date is present");
            let table = match tables.iter().position(|t| Arc::ptr_eq(t, &rib)) {
                Some(idx) => idx,
                None => {
                    tables.push(rib);
                    tables.len() - 1
                }
            };
            months.push(MonthRecord {
                date: wire::encode_date(date),
                table: table as u32,
            });
        }
        let images: Vec<TableImage> = tables.iter().map(|t| encode_table(t)).collect();

        let mut names = NameBlob::default();
        let mut era_dir: Vec<EraDirRecord> = Vec::new();
        let mut era_pairs: Vec<Vec<AsnOrgRecord>> = Vec::new();
        let mut era_orgs: Vec<Vec<OrgNameRecord>> = Vec::new();
        for era in [MappingEra::Caida, MappingEra::ChenEtAl] {
            let map = as_org.map_for_era(era);
            let pairs: Vec<AsnOrgRecord> = map
                .assignments()
                .map(|(asn, org)| AsnOrgRecord {
                    asn: asn.0,
                    org: org.0,
                })
                .collect();
            let orgs: Vec<OrgNameRecord> = map
                .org_names()
                .map(|(org, name)| {
                    let (name_start, name_end) = names.intern(name);
                    OrgNameRecord {
                        org: org.0,
                        name_start,
                        name_end,
                        reserved: 0,
                    }
                })
                .collect();
            era_dir.push(EraDirRecord {
                pair_count: pairs.len() as u32,
                org_count: orgs.len() as u32,
            });
            era_pairs.push(pairs);
            era_orgs.push(orgs);
        }
        let hg_records: Vec<HgRecord> = hg_cdn
            .entries()
            .map(|(name, class)| {
                let (name_start, name_end) = names.intern(name);
                HgRecord {
                    name_start,
                    name_end,
                    class: class_code(class),
                    reserved: 0,
                }
            })
            .collect();
        let asdb_records: Vec<AsdbRecord> = asdb
            .entries()
            .map(|(asn, types)| AsdbRecord {
                asn: asn.0,
                mask: business_mask(types),
            })
            .collect();

        let mut buf = vec![0u8; HEADER_LEN as usize];
        append_records(&mut buf, &months);
        let table_dir: Vec<TableDirRecord> = images
            .iter()
            .map(|img| TableDirRecord {
                v4_count: img.v4.len() as u32,
                v6_count: img.v6.len() as u32,
                origins_count: img.origins.len() as u32,
                reserved: 0,
            })
            .collect();
        append_records(&mut buf, &table_dir);
        append_records(&mut buf, &era_dir);
        for img in &images {
            append_records(&mut buf, &img.v4);
            append_records(&mut buf, &img.v6);
            append_records(&mut buf, &img.origins);
        }
        for (pairs, orgs) in era_pairs.iter().zip(&era_orgs) {
            append_records(&mut buf, pairs);
            append_records(&mut buf, orgs);
        }
        append_records(&mut buf, &hg_records);
        append_records(&mut buf, &asdb_records);
        pad16(&mut buf);
        buf.extend_from_slice(&names.bytes);

        buf[0..8].copy_from_slice(MAGIC);
        put_u32(&mut buf, 8, VERSION);
        put_u32(&mut buf, 12, ENDIAN_TAG);
        put_u64(&mut buf, 16, fingerprint);
        let total_len = buf.len() as u64;
        put_u64(&mut buf, 32, total_len);
        put_u32(&mut buf, 40, months.len() as u32);
        put_u32(&mut buf, 44, images.len() as u32);
        put_u32(&mut buf, 48, hg_records.len() as u32);
        put_u32(&mut buf, 52, asdb_records.len() as u32);
        put_u32(&mut buf, 56, names.bytes.len() as u32);
        let checksum = wire::checksum_skipping(&buf, CHECKSUM_RANGE);
        put_u64(&mut buf, CHECKSUM_RANGE.start, checksum);

        let path = Self::path_of(dir);
        let tmp = dir.join(format!(".{WORLD_FILE_NAME}.tmp"));
        let mut file = fs::File::create(&tmp).map_err(StoreError::Io)?;
        // Failpoint: a torn write persists a prefix of the image and
        // fails, leaving the orphaned temp file for the sweep.
        match sibling_failpoint::io_point("world-store::write") {
            Ok(None) => file.write_all(&buf).map_err(StoreError::Io)?,
            Ok(Some(n)) => {
                file.write_all(&buf[..n.min(buf.len())])
                    .map_err(StoreError::Io)?;
                file.sync_all().map_err(StoreError::Io)?;
                return Err(StoreError::Io(sibling_failpoint::injected(
                    "world-store::write",
                )));
            }
            Err(e) => return Err(StoreError::Io(e)),
        }
        sibling_failpoint::io_point("world-store::sync").map_err(StoreError::Io)?;
        file.sync_all().map_err(StoreError::Io)?;
        drop(file);
        if sibling_failpoint::point("world-store::rename") {
            return Err(StoreError::Io(sibling_failpoint::injected(
                "world-store::rename",
            )));
        }
        fs::rename(&tmp, &path).map_err(StoreError::Io)?;
        sibling_dns::sync_dir(dir).map_err(StoreError::Io)?;
        Ok(path)
    }

    /// Removes an orphaned `.world.sibworld.tmp` left behind by an
    /// interrupted [`WorldStore::write`]. Returns whether one was
    /// removed. Called at every open, so torn writes never accumulate.
    pub fn sweep_orphans(dir: &Path) -> io::Result<bool> {
        let tmp = dir.join(format!(".{WORLD_FILE_NAME}.tmp"));
        match fs::remove_file(&tmp) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Opens and fully validates `dir/world.sibworld`, mapping the file
    /// read-only (heap-read fallback where mmap is unavailable).
    ///
    /// When `expected_fingerprint` is given, a store written under a
    /// different worldgen configuration is rejected with
    /// [`StoreError::BadFingerprint`].
    pub fn open(dir: &Path, expected_fingerprint: Option<u64>) -> Result<StoredWorld, StoreError> {
        Self::open_with(dir, expected_fingerprint, LoadMode::Mmap)
    }

    /// [`WorldStore::open`] with an explicit backing mode. Sweeps an
    /// orphaned temp file from an interrupted write before mapping.
    pub fn open_with(
        dir: &Path,
        expected_fingerprint: Option<u64>,
        mode: LoadMode,
    ) -> Result<StoredWorld, StoreError> {
        Self::sweep_orphans(dir).map_err(StoreError::Io)?;
        let path = Self::path_of(dir);
        let file = match mode {
            LoadMode::Mmap => MapFile::open(&path),
            LoadMode::Read => MapFile::read(&path),
        }
        .map_err(StoreError::Io)?;
        // Failpoint: a short read surfaces as the same truncation error a
        // really-truncated file would produce.
        match sibling_failpoint::io_point("world-store::open").map_err(StoreError::Io)? {
            Some(n) if n < file.len() => {
                return Err(StoreError::Truncated {
                    expected: file.len() as u64,
                    got: n as u64,
                });
            }
            _ => {}
        }
        StoredWorld::from_file(file, expected_fingerprint)
    }

    /// [`WorldStore::open_with`], but a world file that fails validation
    /// is **quarantined**: renamed to `world.sibworld.corrupt` and
    /// reported as [`StoreError::Quarantined`], leaving the slot clean
    /// for regeneration. Environmental errors (I/O) and fingerprint
    /// mismatches (a valid store for a different config) pass through
    /// unchanged.
    pub fn open_quarantining(
        dir: &Path,
        expected_fingerprint: Option<u64>,
        mode: LoadMode,
    ) -> Result<StoredWorld, StoreError> {
        match Self::open_with(dir, expected_fingerprint, mode) {
            Err(reason) if reason.is_corruption() => {
                let path = Self::path_of(dir);
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                let quarantined = PathBuf::from(quarantined);
                // Best-effort: if the rename itself fails, regeneration
                // still lands atomically over the bad file.
                let _ = fs::rename(&path, &quarantined);
                Err(StoreError::Quarantined {
                    path: quarantined,
                    reason: Box::new(reason),
                })
            }
            other => other,
        }
    }
}

/// A per-length record run: `records[start..end]` all have prefix length
/// `len`, sorted ascending by network bits. Runs are kept longest-first,
/// the probe order of longest-prefix match.
#[derive(Debug, Clone, Copy)]
struct LenRun {
    len: u8,
    start: usize,
    end: usize,
}

/// Byte offsets and derived search structure of one stored table.
struct TableMeta {
    v4_off: usize,
    v4_len: usize,
    v6_off: usize,
    v6_len: usize,
    v4_runs: Vec<LenRun>,
    v6_runs: Vec<LenRun>,
    v4_count: usize,
    v6_count: usize,
}

/// The validated, shared innards of an open world store.
struct WorldInner {
    file: MapFile,
    fingerprint: u64,
    months: Vec<(MonthDate, u32)>,
    tables: Vec<TableMeta>,
    as_org: AsOrgSource,
    asdb: AsdbDataset,
    hg_cdn: HgCdnList,
}

impl WorldInner {
    fn v4_records(&self, meta: &TableMeta) -> &[RibRecord4] {
        mapfile::as_records(&self.file.bytes()[meta.v4_off..meta.v4_off + meta.v4_len])
            .expect("section alignment validated at open")
    }

    fn v6_records(&self, meta: &TableMeta) -> &[RibRecord6] {
        mapfile::as_records(&self.file.bytes()[meta.v6_off..meta.v6_off + meta.v6_len])
            .expect("section alignment validated at open")
    }
}

/// Incrementing cursor over the validated file's section offsets; the
/// writer's `append_records` and this walk must agree byte-for-byte.
struct SectionWalk<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> SectionWalk<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            off: HEADER_LEN as usize,
        }
    }

    /// The next `count`-record section of type `T`, advancing the cursor.
    fn records<T: mapfile::Plain>(&mut self, count: usize) -> Result<&'a [T], StoreError> {
        let (off, len) = self.raw(count * std::mem::size_of::<T>())?;
        mapfile::as_records(&self.bytes[off..off + len])
            .ok_or(StoreError::Corrupt("misaligned record section"))
    }

    /// The next `len`-byte section, returning its offset.
    fn raw(&mut self, len: usize) -> Result<(usize, usize), StoreError> {
        let off = wire::align16(self.off as u64) as usize;
        let end = off.checked_add(len).ok_or(StoreError::Corrupt(
            "section extends past the addressable range",
        ))?;
        if end > self.bytes.len() {
            return Err(StoreError::Truncated {
                expected: end as u64,
                got: self.bytes.len() as u64,
            });
        }
        self.off = end;
        Ok((off, len))
    }
}

/// Splits a sorted record array into per-length runs (longest first) and
/// verifies strict key order, canonical prefixes, and origin ranges.
fn index_runs<T, K: Ord + Copy>(
    records: &[T],
    origins: &[u32],
    key: impl Fn(&T) -> (u32, K),
    canonical: impl Fn(&T) -> bool,
    origin_range: impl Fn(&T) -> std::ops::Range<usize>,
    max_len: u8,
) -> Result<Vec<LenRun>, StoreError> {
    let mut runs: Vec<LenRun> = Vec::new();
    let mut prev: Option<(u32, K)> = None;
    for (i, rec) in records.iter().enumerate() {
        let k = key(rec);
        if prev.is_some_and(|p| p >= k) {
            return Err(StoreError::Corrupt("announce table keys out of order"));
        }
        prev = Some(k);
        if k.0 > max_len as u32 || !canonical(rec) {
            return Err(StoreError::Corrupt("non-canonical prefix record"));
        }
        let range = origin_range(rec);
        if range.start >= range.end || range.end > origins.len() {
            return Err(StoreError::Corrupt("origin range out of bounds"));
        }
        if origins[range.clone()].windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Corrupt("origin set not strictly ascending"));
        }
        let len = k.0 as u8;
        match runs.last_mut() {
            Some(run) if run.len == len => run.end = i + 1,
            _ => runs.push(LenRun {
                len,
                start: i,
                end: i + 1,
            }),
        }
    }
    // Keys ascend, so runs were built shortest-first; LPM probes longest
    // lengths first.
    runs.reverse();
    Ok(runs)
}

fn name_slice(blob: &[u8], start: u32, end: u32) -> Result<&str, StoreError> {
    let (start, end) = (start as usize, end as usize);
    if start > end || end > blob.len() {
        return Err(StoreError::Corrupt("name range out of bounds"));
    }
    std::str::from_utf8(&blob[start..end]).map_err(|_| StoreError::Corrupt("name is not UTF-8"))
}

/// An open, validated world store.
///
/// Cheap to clone (one `Arc`); the RIB tables stay in the mapped file and
/// are searched in place, while the small organization tables are
/// materialized once at open.
#[derive(Clone)]
pub struct StoredWorld {
    inner: Arc<WorldInner>,
}

impl StoredWorld {
    fn from_file(file: MapFile, expected_fingerprint: Option<u64>) -> Result<Self, StoreError> {
        let bytes = file.bytes();
        if bytes.len() < HEADER_LEN as usize {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len() as u64,
            });
        }
        if &bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if read_u32(bytes, 12) != ENDIAN_TAG {
            return Err(StoreError::BadEndian);
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let file_len = read_u64(bytes, 32);
        if file_len != bytes.len() as u64 {
            return Err(StoreError::Truncated {
                expected: file_len,
                got: bytes.len() as u64,
            });
        }
        if wire::checksum_skipping(bytes, CHECKSUM_RANGE) != read_u64(bytes, CHECKSUM_RANGE.start) {
            return Err(StoreError::ChecksumMismatch);
        }
        let fingerprint = read_u64(bytes, 16);
        if let Some(expected) = expected_fingerprint {
            if fingerprint != expected {
                return Err(StoreError::BadFingerprint {
                    expected,
                    found: fingerprint,
                });
            }
        }
        let month_count = read_u32(bytes, 40) as usize;
        let table_count = read_u32(bytes, 44) as usize;
        let hg_count = read_u32(bytes, 48) as usize;
        let asdb_count = read_u32(bytes, 52) as usize;
        let names_len = read_u32(bytes, 56) as usize;

        let mut walk = SectionWalk::new(bytes);
        let month_records = walk.records::<MonthRecord>(month_count)?;
        let mut months = Vec::with_capacity(month_count);
        for rec in month_records {
            let date = wire::decode_date(rec.date)
                .ok_or(StoreError::Corrupt("month date out of range"))?;
            if months.last().is_some_and(|(prev, _)| *prev >= date) {
                return Err(StoreError::Corrupt("month directory not ascending"));
            }
            if rec.table as usize >= table_count {
                return Err(StoreError::Corrupt("month references a missing table"));
            }
            months.push((date, rec.table));
        }
        let table_dir = walk.records::<TableDirRecord>(table_count)?.to_vec();
        let era_dir = walk.records::<EraDirRecord>(2)?.to_vec();

        let mut tables = Vec::with_capacity(table_count);
        for dir in &table_dir {
            let v4 = walk.records::<RibRecord4>(dir.v4_count as usize)?;
            let (v4_off, v4_len) = (
                walk.off - std::mem::size_of_val(v4),
                std::mem::size_of_val(v4),
            );
            let v6 = walk.records::<RibRecord6>(dir.v6_count as usize)?;
            let (v6_off, v6_len) = (
                walk.off - std::mem::size_of_val(v6),
                std::mem::size_of_val(v6),
            );
            let origins = walk.records::<u32>(dir.origins_count as usize)?;
            let v4_runs = index_runs(
                v4,
                origins,
                |r| r.key(),
                |r| r.prefix().is_some(),
                |r| r.origins(),
                32,
            )?;
            let v6_runs = index_runs(
                v6,
                origins,
                |r| r.key(),
                |r| r.prefix().is_some(),
                |r| r.origins(),
                128,
            )?;
            tables.push(TableMeta {
                v4_off,
                v4_len,
                v6_off,
                v6_len,
                v4_runs,
                v6_runs,
                v4_count: v4.len(),
                v6_count: v6.len(),
            });
        }

        let mut era_sections = Vec::with_capacity(2);
        for dir in &era_dir {
            let pairs = walk.records::<AsnOrgRecord>(dir.pair_count as usize)?;
            if pairs.windows(2).any(|w| w[0].asn >= w[1].asn) {
                return Err(StoreError::Corrupt("era assignments not ascending"));
            }
            let orgs = walk.records::<OrgNameRecord>(dir.org_count as usize)?;
            if orgs.windows(2).any(|w| w[0].org >= w[1].org) {
                return Err(StoreError::Corrupt("era org names not ascending"));
            }
            era_sections.push((pairs, orgs));
        }
        let hg_records = walk.records::<HgRecord>(hg_count)?;
        let asdb_records = walk.records::<AsdbRecord>(asdb_count)?;
        if asdb_records.windows(2).any(|w| w[0].asn >= w[1].asn) {
            return Err(StoreError::Corrupt("asdb entries not ascending"));
        }
        let (names_off, _) = walk.raw(names_len)?;
        if walk.off as u64 != file_len {
            return Err(StoreError::Corrupt("trailing bytes after the names blob"));
        }
        let blob = &bytes[names_off..names_off + names_len];

        // Materialize the small organization tables (a few thousand
        // entries); only the RIB tables stay zero-copy.
        let mut era_maps = Vec::with_capacity(2);
        for (pairs, orgs) in &era_sections {
            let mut map = AsOrgMap::new();
            for org in *orgs {
                map.add_org(
                    OrgId(org.org),
                    name_slice(blob, org.name_start, org.name_end)?,
                );
            }
            for pair in *pairs {
                map.assign(Asn(pair.asn), OrgId(pair.org));
            }
            era_maps.push(map);
        }
        let chen = era_maps.pop().expect("two era sections");
        let caida = era_maps.pop().expect("two era sections");
        let mut hg_cdn = HgCdnList::new();
        for rec in hg_records {
            let class =
                class_from_code(rec.class).ok_or(StoreError::Corrupt("unknown hg/cdn class"))?;
            hg_cdn.add(name_slice(blob, rec.name_start, rec.name_end)?, class);
        }
        let mut asdb = AsdbDataset::new();
        for rec in asdb_records {
            if rec.mask == 0 || rec.mask >= 1 << BusinessType::ALL.len() {
                return Err(StoreError::Corrupt("asdb mask out of range"));
            }
            asdb.assign(Asn(rec.asn), business_types(rec.mask));
        }

        Ok(Self {
            inner: Arc::new(WorldInner {
                file,
                fingerprint,
                months,
                tables,
                as_org: AsOrgSource::new(caida, chen),
                asdb,
                hg_cdn,
            }),
        })
    }

    /// The worldgen-config fingerprint the file was written under.
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// All stored months, ascending.
    pub fn months(&self) -> Vec<MonthDate> {
        self.inner.months.iter().map(|(d, _)| *d).collect()
    }

    /// Whether `date` has a stored table.
    pub fn contains(&self, date: MonthDate) -> bool {
        self.inner
            .months
            .binary_search_by_key(&date, |(d, _)| *d)
            .is_ok()
    }

    /// The dated RIB archive over mmap-backed table handles — the direct
    /// substitute for `World::rib_archive()` in store-backed runs.
    pub fn rib_archive(&self) -> RibArchive<StoredRib> {
        let mut archive = RibArchive::new();
        for &(date, table) in &self.inner.months {
            archive.insert_shared(
                date,
                StoredRib {
                    inner: Arc::clone(&self.inner),
                    table,
                },
            );
        }
        archive
    }

    /// The era-switching AS → organization source.
    pub fn as_org(&self) -> &AsOrgSource {
        &self.inner.as_org
    }

    /// The ASdb business-type dataset.
    pub fn asdb(&self) -> &AsdbDataset {
        &self.inner.asdb
    }

    /// The hypergiant/CDN organization list.
    pub fn hg_cdn(&self) -> &HgCdnList {
        &self.inner.hg_cdn
    }

    /// How the file contents are held (mmap or heap).
    pub fn backing(&self) -> mapfile::Backing {
        self.inner.file.backing()
    }

    /// Total bytes of the underlying file.
    pub fn byte_len(&self) -> usize {
        self.inner.file.len()
    }
}

impl std::fmt::Debug for StoredWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredWorld")
            .field("months", &self.inner.months.len())
            .field("tables", &self.inner.tables.len())
            .field(
                "fingerprint",
                &format_args!("{:#018x}", self.inner.fingerprint),
            )
            .finish()
    }
}

/// One month's announce table, resolved in place over the mapped file.
///
/// Implements [`RibSource`], so the detection engine's window driver runs
/// over stored tables exactly as it does over generated [`Rib`]s. Lookup
/// is longest-prefix match as a per-length binary search: lengths are
/// probed longest-first, and within a length the masked address is
/// binary-searched in that length's bits-sorted record run.
#[derive(Clone)]
pub struct StoredRib {
    inner: Arc<WorldInner>,
    table: u32,
}

impl StoredRib {
    fn meta(&self) -> &TableMeta {
        &self.inner.tables[self.table as usize]
    }

    fn lookup_v4(&self, addr: u32) -> Option<(u8, u32)> {
        let meta = self.meta();
        let records = self.inner.v4_records(meta);
        for run in &meta.v4_runs {
            let masked = addr & u32::prefix_mask(run.len);
            if records[run.start..run.end]
                .binary_search_by(|r| r.bits.cmp(&masked))
                .is_ok()
            {
                return Some((run.len, masked));
            }
        }
        None
    }

    fn lookup_v6(&self, addr: u128) -> Option<(u8, u128)> {
        let meta = self.meta();
        let records = self.inner.v6_records(meta);
        for run in &meta.v6_runs {
            let masked = addr & u128::prefix_mask(run.len);
            if records[run.start..run.end]
                .binary_search_by(|r| r.bits().cmp(&masked))
                .is_ok()
            {
                return Some((run.len, masked));
            }
        }
        None
    }
}

impl RibSource for StoredRib {
    fn announced_prefix<F: AddressFamily>(&self, addr: F) -> Option<Prefix<F>> {
        let (len, bits) = match F::FAMILY {
            IpFamily::V4 => {
                let (len, bits) = self.lookup_v4(addr.to_u128() as u32)?;
                (len, bits as u128)
            }
            IpFamily::V6 => self.lookup_v6(addr.to_u128())?,
        };
        Some(Prefix::new(F::from_u128(bits), len).expect("canonical record validated at open"))
    }

    fn counts(&self) -> (usize, usize) {
        let meta = self.meta();
        (meta.v4_count, meta.v6_count)
    }

    fn same_table(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) && self.table == other.table
    }
}

impl std::fmt::Debug for StoredRib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (v4, v6) = self.counts();
        f.debug_struct("StoredRib")
            .field("table", &self.table)
            .field("v4", &v4)
            .field("v6", &v6)
            .finish()
    }
}

/// The months of `window` absent from `stored`, as a typed
/// [`StoreError::MissingMonths`] (empty result means all present). One
/// failed `batch --store` run names every gap, not just the first.
pub fn check_months(stored: &StoredWorld, window: &[MonthDate]) -> Result<(), StoreError> {
    let missing: Vec<MonthDate> = window
        .iter()
        .copied()
        .filter(|d| !stored.contains(*d))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(StoreError::MissingMonths { missing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sibling-world-store-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn sample_rib(seed: u32) -> Rib {
        let mut rib = Rib::new();
        rib.announce(p4("23.0.0.0/8"), Asn(100 + seed));
        rib.announce(p4("23.1.0.0/16"), Asn(200));
        rib.announce(p4("23.1.0.0/24"), Asn(300));
        rib.announce(p4("198.51.100.0/24"), Asn(400));
        // MOAS entry: origins must round-trip sorted.
        rib.announce(p4("203.0.113.0/24"), Asn(900));
        rib.announce(p4("203.0.113.0/24"), Asn(500));
        rib.announce(p6("2001:db8::/32"), Asn(100 + seed));
        rib.announce(p6("2001:db8:1::/48"), Asn(200));
        rib.announce(p6("2600:9000::/28"), Asn(16509));
        rib
    }

    fn sample_world() -> (RibArchive<Arc<Rib>>, AsOrgSource, AsdbDataset, HgCdnList) {
        let mut archive = RibArchive::new();
        let shared = Arc::new(sample_rib(0));
        archive.insert_shared(MonthDate::new(2020, 9), shared.clone());
        archive.insert_shared(MonthDate::new(2020, 10), shared);
        archive.insert(MonthDate::new(2020, 11), sample_rib(7));

        let mut caida = AsOrgMap::new();
        caida.add_org(OrgId(0), "ExampleNet");
        caida.add_org(OrgId(1_000_000), "ExampleNet IPv6 Ops");
        caida.assign(Asn(100), OrgId(0));
        caida.assign(Asn(200), OrgId(1_000_000));
        let mut chen = AsOrgMap::new();
        chen.add_org(OrgId(0), "ExampleNet");
        chen.assign(Asn(100), OrgId(0));
        chen.assign(Asn(200), OrgId(0));
        let as_org = AsOrgSource::new(caida, chen);

        let mut asdb = AsdbDataset::new();
        asdb.assign(Asn(100), vec![BusinessType::ComputerAndIt]);
        asdb.assign(
            Asn(200),
            vec![BusinessType::Media, BusinessType::ComputerAndIt],
        );

        (archive, as_org, asdb, HgCdnList::canonical())
    }

    fn write_sample(dir: &Path) -> PathBuf {
        let (archive, as_org, asdb, hg) = sample_world();
        WorldStore::write(dir, 0xDEAD_BEEF, &archive, &as_org, &asdb, &hg).unwrap()
    }

    #[test]
    fn round_trip_matches_generated_tables() {
        let dir = temp_dir("round-trip");
        write_sample(&dir);
        for mode in [LoadMode::Mmap, LoadMode::Read] {
            let world = WorldStore::open_with(&dir, Some(0xDEAD_BEEF), mode).unwrap();
            assert_eq!(world.fingerprint(), 0xDEAD_BEEF);
            assert_eq!(
                world.months(),
                vec![
                    MonthDate::new(2020, 9),
                    MonthDate::new(2020, 10),
                    MonthDate::new(2020, 11)
                ]
            );
            let archive = world.rib_archive();
            let generated = sample_rib(0);
            let stored = archive.at(MonthDate::new(2020, 9)).unwrap();
            // Every announced prefix resolves identically to the trie, for
            // addresses inside each prefix and at both families.
            for addr in [
                u32::from_be_bytes([23, 1, 0, 77]),
                u32::from_be_bytes([23, 1, 9, 1]),
                u32::from_be_bytes([23, 200, 0, 1]),
                u32::from_be_bytes([198, 51, 100, 9]),
                u32::from_be_bytes([203, 0, 113, 3]),
                u32::from_be_bytes([8, 8, 8, 8]),
            ] {
                assert_eq!(
                    stored.announced_prefix(addr),
                    RibSource::announced_prefix(&generated, addr),
                    "v4 addr {addr:#010x}"
                );
            }
            for addr in [
                u128::from("2001:db8:1::1".parse::<std::net::Ipv6Addr>().unwrap()),
                u128::from("2001:db8:2::1".parse::<std::net::Ipv6Addr>().unwrap()),
                u128::from("2600:9000::1".parse::<std::net::Ipv6Addr>().unwrap()),
                u128::from("::1".parse::<std::net::Ipv6Addr>().unwrap()),
            ] {
                assert_eq!(
                    stored.announced_prefix(addr),
                    RibSource::announced_prefix(&generated, addr),
                    "v6 addr {addr:#034x}"
                );
            }
            assert_eq!(stored.counts(), generated.counts());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_tables_dedupe_and_same_table_tracks_identity() {
        let dir = temp_dir("dedupe");
        write_sample(&dir);
        let world = WorldStore::open(&dir, None).unwrap();
        assert_eq!(world.inner.tables.len(), 2, "three months, two tables");
        let archive = world.rib_archive();
        let a = archive.at(MonthDate::new(2020, 9)).unwrap();
        let b = archive.at(MonthDate::new(2020, 10)).unwrap();
        let c = archive.at(MonthDate::new(2020, 11)).unwrap();
        assert!(a.same_table(&b));
        assert!(!a.same_table(&c));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn org_tables_round_trip() {
        let dir = temp_dir("orgs");
        write_sample(&dir);
        let world = WorldStore::open(&dir, None).unwrap();
        let (_, as_org, asdb, hg) = sample_world();
        for era in [MappingEra::Caida, MappingEra::ChenEtAl] {
            let want = as_org.map_for_era(era);
            let got = world.as_org().map_for_era(era);
            assert_eq!(
                got.assignments().collect::<Vec<_>>(),
                want.assignments().collect::<Vec<_>>()
            );
            assert_eq!(
                got.org_names().collect::<Vec<_>>(),
                want.org_names().collect::<Vec<_>>()
            );
        }
        assert_eq!(
            world.asdb().entries().collect::<Vec<_>>(),
            asdb.entries().collect::<Vec<_>>()
        );
        assert_eq!(
            world.hg_cdn().entries().collect::<Vec<_>>(),
            hg.entries().collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_fingerprint_is_rejected() {
        let dir = temp_dir("fingerprint");
        write_sample(&dir);
        match WorldStore::open(&dir, Some(1)) {
            Err(StoreError::BadFingerprint { expected, found }) => {
                assert_eq!(expected, 1);
                assert_eq!(found, 0xDEAD_BEEF);
            }
            other => panic!("expected BadFingerprint, got {other:?}"),
        }
        // No expectation: any fingerprint is accepted.
        assert!(WorldStore::open(&dir, None).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_table_is_rejected() {
        let dir = temp_dir("truncated");
        let path = write_sample(&dir);
        let bytes = fs::read(&path).unwrap();
        // Cut mid-table; the header still claims the full length.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            WorldStore::open(&dir, None),
            Err(StoreError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsorted_keys_are_rejected() {
        let dir = temp_dir("unsorted");
        let path = write_sample(&dir);
        let mut bytes = fs::read(&path).unwrap();
        // Swap the `bits` fields of two /24 records in the first table's
        // v4 section (records 2 and 3 of the len-first sort: the three
        // /24s follow the /8 and /16). Same length run, both canonical —
        // only strict key order breaks.
        let world = WorldStore::open(&dir, None).unwrap();
        let off = world.inner.tables[0].v4_off;
        drop(world);
        let rec_size = std::mem::size_of::<RibRecord4>();
        let (a, b) = (off + 2 * rec_size + 4, off + 3 * rec_size + 4);
        for i in 0..4 {
            bytes.swap(a + i, b + i);
        }
        let checksum = wire::checksum_skipping(&bytes, CHECKSUM_RANGE);
        put_u64(&mut bytes, CHECKSUM_RANGE.start, checksum);
        fs::write(&path, &bytes).unwrap();
        match WorldStore::open(&dir, None) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("out of order"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_fields_fail_checksum() {
        let dir = temp_dir("checksum");
        let path = write_sample(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[40] ^= 0xFF; // month count
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            WorldStore::open(&dir, None),
            Err(StoreError::ChecksumMismatch)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_months_lists_every_gap() {
        let dir = temp_dir("missing");
        write_sample(&dir);
        let world = WorldStore::open(&dir, None).unwrap();
        let window = [
            MonthDate::new(2020, 8),
            MonthDate::new(2020, 9),
            MonthDate::new(2020, 12),
        ];
        match check_months(&world, &window) {
            Err(StoreError::MissingMonths { missing }) => {
                assert_eq!(
                    missing,
                    vec![MonthDate::new(2020, 8), MonthDate::new(2020, 12)]
                );
            }
            other => panic!("expected MissingMonths, got {other:?}"),
        }
        assert!(check_months(&world, &[MonthDate::new(2020, 10)]).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let dir = temp_dir("magic");
        let path = write_sample(&dir);
        let original = fs::read(&path).unwrap();
        let mut bytes = original.clone();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            WorldStore::open(&dir, None),
            Err(StoreError::BadMagic)
        ));
        let mut bytes = original;
        put_u32(&mut bytes, 8, 99);
        let checksum = wire::checksum_skipping(&bytes, CHECKSUM_RANGE);
        put_u64(&mut bytes, CHECKSUM_RANGE.start, checksum);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            WorldStore::open(&dir, None),
            Err(StoreError::BadVersion(99))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_tmp_is_swept_at_open() {
        let dir = temp_dir("sweep");
        write_sample(&dir);
        let tmp = dir.join(format!(".{WORLD_FILE_NAME}.tmp"));
        fs::write(&tmp, b"torn write residue").unwrap();
        let world = WorldStore::open(&dir, None).unwrap();
        assert!(!tmp.exists(), "open must sweep the orphaned temp file");
        assert_eq!(world.fingerprint(), 0xDEAD_BEEF);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_round_trip_corrupt_regenerate_reopen() {
        let dir = temp_dir("quarantine");
        let path = write_sample(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 3] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let quarantined = match WorldStore::open_quarantining(&dir, None, LoadMode::Mmap) {
            Err(StoreError::Quarantined { path, reason }) => {
                assert!(reason.is_corruption(), "{reason}");
                path
            }
            other => panic!("expected Quarantined, got {other:?}"),
        };
        assert!(quarantined.ends_with("world.sibworld.corrupt"));
        assert!(quarantined.is_file(), "corrupt file moved aside");
        assert!(!path.exists(), "slot left clean for regeneration");
        // Regenerate into the clean slot; reopen must be clean.
        write_sample(&dir);
        assert!(WorldStore::open_quarantining(&dir, Some(0xDEAD_BEEF), LoadMode::Mmap).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_spares_fingerprint_mismatches_and_missing_files() {
        let dir = temp_dir("quarantine-spares");
        let path = write_sample(&dir);
        // A valid store for a different config is NOT corruption.
        assert!(matches!(
            WorldStore::open_quarantining(&dir, Some(1), LoadMode::Mmap),
            Err(StoreError::BadFingerprint { .. })
        ));
        assert!(path.is_file(), "fingerprint mismatch must not quarantine");
        fs::remove_file(&path).unwrap();
        assert!(matches!(
            WorldStore::open_quarantining(&dir, None, LoadMode::Mmap),
            Err(StoreError::Io(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
