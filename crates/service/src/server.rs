//! The socket server: N resident reader threads answering the line
//! protocol over TCP or unix-domain sockets.
//!
//! Each reader is a long-lived [`ThreadPool::spawn_resident`] task owning
//! a clone of the listener: it accepts a connection, answers request
//! lines until the peer hangs up, then accepts the next — so `readers`
//! bounds the number of concurrently served connections. The listener is
//! non-blocking and accepted streams get a short read timeout, so every
//! reader observes the stop signal within tens of milliseconds of
//! [`ServerHandle`] dropping; no thread is ever parked unwakeably in a
//! syscall.
//!
//! The hot path holds no locks: readers share the immutable
//! [`crate::QueryPlanner`] (an `Arc` of the published index) and a
//! per-thread reusable output buffer.
//!
//! # Overload and failure behavior
//!
//! [`ServeOptions`] bounds every way a connection can consume the
//! server:
//!
//! - **Connection cap** — a connection accepted beyond `max_conns` is
//!   turned away with a single `err busy` line and closed; the readers
//!   serving within the cap are unaffected.
//! - **Expensive-verb shedding** — while demand exceeds the cap, the
//!   ranked top-k (`partners`) and multi-month history (`pair`) verbs
//!   answer `err busy` before touching the index; point lookups and
//!   liveness keep answering.
//! - **Per-request deadline** — a request line that dribbles in slower
//!   than `request_deadline` (slow-loris) gets `err timeout` and the
//!   connection is closed.
//! - **Idle timeout** — a connection with no traffic for `idle_timeout`
//!   is closed (with a final `err timeout` courtesy line).
//! - **Panic isolation** — a panic while answering kills only that
//!   connection; the reader accepts the next one.
//! - **Graceful drain** — [`ServerHandle::drain`] stops accepting,
//!   lets in-flight requests finish (bounded by `drain_deadline`), then
//!   joins the readers and reports [`ServeStats`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sibling_dns::SnapshotDelta;
use sibling_executor::{ResidentCtx, ThreadPool};

use crate::ingest::IngestSink;
use crate::planner::QueryPlanner;
use crate::protocol::{parse_request, ProtocolError, Request};

/// How long an accept/read blocks before re-checking the stop signal.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// How long a shed connection lingers after its `err busy` line so the
/// client can read it before the close (see [`shed_conn`]).
const SHED_LINGER: Duration = Duration::from_millis(100);

/// How long a reader waits for the writer thread to apply one delta
/// before answering `err timeout`. Generous: an ingest rescoring many
/// dirty shards legitimately takes seconds at paper scale.
const INGEST_DEADLINE: Duration = Duration::from_secs(120);

/// Where to serve.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP listen address, e.g. `127.0.0.1:7700` (port `0` picks one).
    Tcp(String),
    /// A unix-domain socket path (removed on shutdown).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Resource bounds for a serving session (see the module docs for the
/// semantics of each knob).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Connections served concurrently before new ones are shed with
    /// `err busy`. `0` (the default) means "as many as there are
    /// readers" — the natural capacity, since each reader serves one
    /// connection at a time.
    pub max_conns: usize,
    /// How long one request line may take to fully arrive before the
    /// connection gets `err timeout` and is closed.
    pub request_deadline: Duration,
    /// How long a connection may sit with no traffic before it is
    /// closed (slow-loris/abandoned-peer protection).
    pub idle_timeout: Duration,
    /// How long [`ServerHandle::drain`] waits for in-flight connections
    /// to finish before joining the readers regardless.
    pub drain_deadline: Duration,
    /// Shed expensive verbs (`partners`, `pair`) when at least this
    /// many connections are active. `0` (the default) resolves to
    /// `max_conns + 1`: shedding starts only while demand exceeds the
    /// connection cap.
    pub shed_expensive_at: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_conns: 0,
            request_deadline: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            shed_expensive_at: 0,
        }
    }
}

/// Counters a serving session accumulates (readable while running via
/// [`ServerHandle::stats`], final values in the [`DrainReport`]).
#[derive(Debug, Default)]
pub struct ServeStats {
    served: AtomicU64,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    ingests: AtomicU64,
    ingest_failures: AtomicU64,
    epochs: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            ingests: self.ingests.load(Ordering::Relaxed),
            ingest_failures: self.ingest_failures.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStatsSnapshot {
    /// Requests answered (including `err` answers).
    pub served: u64,
    /// Connections turned away at the cap.
    pub shed_connections: u64,
    /// Expensive-verb requests shed under pressure.
    pub shed_requests: u64,
    /// Connections closed by the request deadline or idle timeout.
    pub timeouts: u64,
    /// Connections killed by a panic while answering.
    pub panics: u64,
    /// Deltas handed to the writer thread (accepted `ingest` requests).
    pub ingests: u64,
    /// Ingests that failed to apply (validation, journal, publication,
    /// or a panic in the sink) and were rolled back.
    pub ingest_failures: u64,
    /// Epochs published by successful ingests (excludes the initial
    /// epoch the daemon starts on).
    pub epochs: u64,
}

impl std::fmt::Display for ServeStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} request(s), shed {} connection(s) and {} request(s), \
             {} timeout(s), {} panic(s), ingested {} delta(s) ({} failed, \
             {} epoch(s) published)",
            self.served,
            self.shed_connections,
            self.shed_requests,
            self.timeouts,
            self.panics,
            self.ingests,
            self.ingest_failures,
            self.epochs
        )
    }
}

/// What [`ServerHandle::drain`] observed.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Whether every in-flight connection finished within the drain
    /// deadline (`false`: the readers were joined anyway — they close
    /// their connections at the next poll tick).
    pub drained: bool,
    /// Final serving counters.
    pub stats: ServeStatsSnapshot,
}

/// A bound listener of either flavor.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn try_clone(&self) -> io::Result<Listener> {
        Ok(match self {
            Listener::Tcp(l) => Listener::Tcp(l.try_clone()?),
            #[cfg(unix)]
            Listener::Unix(l) => Listener::Unix(l.try_clone()?),
        })
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }
}

/// An accepted connection of either flavor.
pub(crate) enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Half-closes the write side, signalling EOF to the peer while its
    /// pending bytes can still be drained.
    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    fn prepare(&self, read_timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(read_timeout)?;
                // Request/response round-trips: answer latency beats
                // segment coalescing.
                s.set_nodelay(true)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(read_timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One queued `ingest` request: the decoded delta and the channel the
/// waiting reader blocks on for the writer's verdict (the new epoch, or
/// the rendered failure).
struct IngestJob {
    delta: SnapshotDelta,
    reply: mpsc::SyncSender<Result<u64, String>>,
}

/// State every reader shares: the planner, the stop signal, the active
/// connection gauge and the counters.
struct Shared {
    planner: QueryPlanner,
    stop: AtomicBool,
    active: AtomicUsize,
    stats: Arc<ServeStats>,
    max_conns: usize,
    /// Active-connection count at which expensive verbs shed.
    pressure_at: usize,
    request_deadline: Duration,
    idle_timeout: Duration,
    drain_deadline: Duration,
    /// The writer thread's inbox — `None` on read-only daemons, where
    /// `ingest` answers `err read-only`. The mutex serializes senders;
    /// it is held only for the (non-blocking) enqueue.
    ingest: Option<Mutex<mpsc::Sender<IngestJob>>>,
}

impl Shared {
    fn stopping(&self, ctx: &ResidentCtx) -> bool {
        self.stop.load(Ordering::Acquire) || ctx.stopping()
    }
}

/// A bound-but-not-yet-serving server. Binding is split from serving so
/// the caller can print the resolved endpoint (e.g. the picked TCP port)
/// before the readers start.
pub struct Server {
    listener: Listener,
    endpoint: String,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds the endpoint. A stale unix socket file at the path is
    /// replaced (the previous daemon is assumed dead; a live one would
    /// have the file open, and its readers keep serving their fd).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Server> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let endpoint = format!("tcp://{}", listener.local_addr()?);
                Ok(Server {
                    listener: Listener::Tcp(listener),
                    endpoint,
                    socket_path: None,
                })
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok(Server {
                    listener: Listener::Unix(listener),
                    endpoint: format!("unix://{}", path.display()),
                    socket_path: Some(path.clone()),
                })
            }
        }
    }

    /// The resolved endpoint (`tcp://HOST:PORT` or `unix://PATH`) — what
    /// [`crate::Client::connect`] accepts.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// [`Server::start_with`] under default [`ServeOptions`].
    pub fn start(
        self,
        planner: QueryPlanner,
        pool: ThreadPool,
        readers: usize,
    ) -> io::Result<ServerHandle> {
        self.start_with(planner, pool, readers, ServeOptions::default())
    }

    /// Starts `readers` resident reader threads on `pool` and returns
    /// the running server's handle. The pool is moved in: the server owns
    /// it for the rest of its life, and dropping the handle stops the
    /// readers and joins them (via the pool's own shutdown signal).
    pub fn start_with(
        self,
        planner: QueryPlanner,
        pool: ThreadPool,
        readers: usize,
        options: ServeOptions,
    ) -> io::Result<ServerHandle> {
        self.launch(planner, pool, readers, options, None)
    }

    /// [`Server::start_with`] plus a writer: one extra resident thread
    /// owns `sink` and applies queued `ingest` deltas strictly in
    /// arrival order, so readers stay lock-free while the window
    /// advances epoch by epoch.
    pub fn start_live(
        self,
        planner: QueryPlanner,
        pool: ThreadPool,
        readers: usize,
        options: ServeOptions,
        sink: Box<dyn IngestSink>,
    ) -> io::Result<ServerHandle> {
        self.launch(planner, pool, readers, options, Some(sink))
    }

    fn launch(
        self,
        mut planner: QueryPlanner,
        pool: ThreadPool,
        readers: usize,
        options: ServeOptions,
        sink: Option<Box<dyn IngestSink>>,
    ) -> io::Result<ServerHandle> {
        self.listener.set_nonblocking(true)?;
        let readers = readers.max(1);
        let max_conns = match options.max_conns {
            0 => readers,
            n => n,
        };
        let stats = Arc::new(ServeStats::default());
        planner.attach_stats(Arc::clone(&stats));
        let (ingest, writer) = match sink {
            Some(sink) => {
                let (tx, rx) = mpsc::channel();
                (Some(Mutex::new(tx)), Some((sink, rx)))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            planner,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            stats,
            max_conns,
            pressure_at: match options.shed_expensive_at {
                0 => max_conns + 1,
                n => n,
            },
            request_deadline: options.request_deadline,
            idle_timeout: options.idle_timeout,
            drain_deadline: options.drain_deadline,
            ingest,
        });
        if let Some((sink, rx)) = writer {
            let shared = Arc::clone(&shared);
            pool.spawn_resident(move |ctx| writer_loop(sink, rx, shared, ctx));
        }
        for _ in 0..readers {
            let listener = self.listener.try_clone()?;
            let shared = Arc::clone(&shared);
            pool.spawn_resident(move |ctx| reader_loop(listener, shared, ctx));
        }
        Ok(ServerHandle {
            pool: Some(pool),
            shared,
            endpoint: self.endpoint,
            socket_path: self.socket_path,
        })
    }
}

/// A running server. Dropping it stops and joins every reader thread and
/// removes the unix socket file, if any.
pub struct ServerHandle {
    pool: Option<ThreadPool>,
    shared: Arc<Shared>,
    endpoint: String,
    socket_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The resolved endpoint (see [`Server::endpoint`]).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The serving counters so far.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Connections being served right now.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Blocks the calling thread until the process is killed — the
    /// daemon's steady state after printing its readiness line.
    pub fn park_forever(&self) -> ! {
        loop {
            std::thread::park();
        }
    }

    /// Gracefully winds the server down: stops accepting, waits (up to
    /// the drain deadline) for in-flight connections to finish their
    /// current request, then joins the readers and reports the final
    /// counters.
    pub fn drain(mut self) -> DrainReport {
        self.shared.stop.store(true, Ordering::Release);
        let deadline = Instant::now() + self.shared.drain_deadline;
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drained = self.shared.active.load(Ordering::Acquire) == 0;
        // Joins the readers; they poll the stop flag at least every
        // POLL_INTERVAL, so this returns promptly even when not drained.
        drop(self.pool.take());
        DrainReport {
            drained,
            stats: self.shared.stats.snapshot(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Joins workers then residents; readers poll the stop flag at
        // least every POLL_INTERVAL, so this returns promptly.
        drop(self.pool.take());
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One reader thread: accept, serve the connection to EOF, repeat. A
/// connection beyond the cap is turned away with `err busy`; a panic
/// while serving kills only that connection.
fn reader_loop(listener: Listener, shared: Arc<Shared>, ctx: ResidentCtx) {
    let mut out = String::new();
    while !shared.stopping(&ctx) {
        // Failpoint: a transient accept failure (e.g. peer reset
        // mid-handshake) — same handling as the real thing below.
        if sibling_failpoint::point("service::accept") {
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }
        match listener.accept() {
            Ok(conn) => {
                let active = shared.active.fetch_add(1, Ordering::AcqRel) + 1;
                if active > shared.max_conns {
                    ServeStats::bump(&shared.stats.shed_connections);
                    let _ = shed_conn(conn, active, shared.max_conns);
                } else {
                    let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // Transport errors end the connection, never the
                        // reader.
                        let _ = serve_conn(&shared, conn, &mut out, &ctx);
                    }));
                    if served.is_err() {
                        ServeStats::bump(&shared.stats.panics);
                        out = String::new();
                    }
                }
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept failures (e.g. peer reset mid-handshake).
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// The writer thread: applies queued deltas through the sink, strictly
/// in arrival order, and always answers the waiting reader. A panic in
/// the sink is caught and reported as a failed ingest — the sink is
/// expected to have rolled back to its last published epoch (see
/// [`sibling_core::EpochState`]), so the thread keeps serving.
fn writer_loop(
    mut sink: Box<dyn IngestSink>,
    jobs: mpsc::Receiver<IngestJob>,
    shared: Arc<Shared>,
    ctx: ResidentCtx,
) {
    loop {
        match jobs.recv_timeout(POLL_INTERVAL) {
            Ok(job) => {
                ServeStats::bump(&shared.stats.ingests);
                let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sink.ingest(&job.delta)
                }));
                let outcome = match applied {
                    Ok(Ok(epoch)) => {
                        ServeStats::bump(&shared.stats.epochs);
                        Ok(epoch)
                    }
                    Ok(Err(detail)) => {
                        ServeStats::bump(&shared.stats.ingest_failures);
                        Err(detail)
                    }
                    Err(payload) => {
                        ServeStats::bump(&shared.stats.ingest_failures);
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(format!("ingest panicked: {msg}"))
                    }
                };
                // The reader may have timed out and gone; that loses
                // only the notification, never the applied epoch.
                let _ = job.reply.send(outcome);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stopping(&ctx) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Answers one `ingest` line: decode, enqueue to the writer, block for
/// its verdict. Runs on the reader thread; the ingest itself runs on
/// the writer thread so a second connection's point queries never queue
/// behind a rescore.
fn answer_ingest(shared: &Shared, line: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.clear();
    let outcome = (|| {
        let request = parse_request(line)?;
        let Request::Ingest(delta) = request else {
            // Verb-sniffed by the caller; parse can only agree.
            return Err(ProtocolError::Usage {
                verb: "ingest",
                usage: "HEX-ENCODED-DELTA",
            });
        };
        let sender = shared.ingest.as_ref().ok_or(ProtocolError::ReadOnly)?;
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        sender
            .lock()
            .expect("ingest sender poisoned")
            .send(IngestJob {
                delta,
                reply: reply_tx,
            })
            .map_err(|_| ProtocolError::IngestFailed {
                detail: "writer thread is gone".into(),
            })?;
        match reply_rx.recv_timeout(INGEST_DEADLINE) {
            Ok(Ok(epoch)) => Ok(epoch),
            Ok(Err(detail)) => Err(ProtocolError::IngestFailed { detail }),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ProtocolError::Timeout {
                what: "ingest",
                budget_ms: INGEST_DEADLINE.as_millis() as u64,
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ProtocolError::IngestFailed {
                detail: "writer thread died before answering".into(),
            }),
        }
    })();
    match outcome {
        Ok(epoch) => {
            let _ = write!(out, "ok 1\n{epoch}\n");
        }
        Err(error) => {
            let _ = writeln!(out, "err {} {}", error.code(), error);
        }
    }
}

/// Turns away a connection beyond the cap: one `err busy` line, close.
fn shed_conn(mut conn: Conn, active: usize, max: usize) -> io::Result<()> {
    conn.prepare(Some(POLL_INTERVAL))?;
    let error = ProtocolError::Busy {
        what: "connection",
        active,
        max,
    };
    conn.write_all(format!("err {} {}\n", error.code(), error).as_bytes())?;
    // Half-close, then briefly drain whatever request the client had in
    // flight: dropping the socket outright would RST past the un-read
    // busy line on most TCP stacks, turning a typed shed into an opaque
    // connection reset. Bounded so a client that keeps sending cannot
    // pin the reader.
    conn.shutdown_write()?;
    let deadline = Instant::now() + SHED_LINGER;
    let mut sink = [0u8; 256];
    while Instant::now() < deadline {
        match conn.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    Ok(())
}

/// Serves one connection until EOF, transport error, deadline or drain.
fn serve_conn(shared: &Shared, conn: Conn, out: &mut String, ctx: &ResidentCtx) -> io::Result<()> {
    conn.prepare(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    // Last completed request (or connection start): both deadlines are
    // measured from here.
    let mut last_done = Instant::now();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                // Failpoint: a panic mid-answer (isolated by the reader
                // loop's catch_unwind — only this connection dies).
                let _ = sibling_failpoint::point("service::answer");
                let active = shared.active.load(Ordering::Acquire);
                let pressure = (active >= shared.pressure_at).then_some((active, shared.max_conns));
                if line.split_whitespace().next() == Some("ingest") {
                    // Writes bypass the read planner (and read-pressure
                    // shedding): the writer thread serializes them.
                    answer_ingest(shared, &line, out);
                } else {
                    // Failpoint: the primary dies (or the connection
                    // tears) instead of answering a feed poll — the
                    // follower must resync from its cursor.
                    if line.split_whitespace().next() == Some("sub") {
                        sibling_failpoint::io_point("replication::send")
                            .map_err(|e| io::Error::new(io::ErrorKind::ConnectionReset, e))?;
                    }
                    shared
                        .planner
                        .answer_line_under_pressure(&line, out, pressure);
                }
                if out.starts_with("err busy ") {
                    ServeStats::bump(&shared.stats.shed_requests);
                }
                // Failpoint: a stalled or failed response write.
                sibling_failpoint::io_point("service::write")
                    .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e))?;
                reader.get_mut().write_all(out.as_bytes())?;
                ServeStats::bump(&shared.stats.served);
                line.clear();
                last_done = Instant::now();
                // Drain: the in-flight request just finished; close
                // instead of reading the next one.
                if shared.stopping(ctx) {
                    return Ok(());
                }
            }
            // Timeout: `read_line` keeps any partial line in `line`
            // (documented for `read_until`), so resuming is lossless.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stopping(ctx) {
                    return Ok(());
                }
                let waited = last_done.elapsed();
                if !line.is_empty() && waited >= shared.request_deadline {
                    // Slow-loris: the request line is dribbling in
                    // slower than the deadline.
                    ServeStats::bump(&shared.stats.timeouts);
                    return close_timed_out(reader.get_mut(), "request", shared.request_deadline);
                }
                if line.is_empty() && waited >= shared.idle_timeout {
                    ServeStats::bump(&shared.stats.timeouts);
                    return close_timed_out(
                        reader.get_mut(),
                        "idle connection",
                        shared.idle_timeout,
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Sends the courtesy `err timeout` line and ends the connection.
fn close_timed_out(conn: &mut Conn, what: &'static str, budget: Duration) -> io::Result<()> {
    let error = ProtocolError::Timeout {
        what,
        budget_ms: budget.as_millis() as u64,
    };
    conn.write_all(format!("err {} {}\n", error.code(), error).as_bytes())
}
