//! The socket server: N resident reader threads answering the line
//! protocol over TCP or unix-domain sockets.
//!
//! Each reader is a long-lived [`ThreadPool::spawn_resident`] task owning
//! a clone of the listener: it accepts a connection, answers request
//! lines until the peer hangs up, then accepts the next — so `readers`
//! bounds the number of concurrently served connections. The listener is
//! non-blocking and accepted streams get a short read timeout, so every
//! reader observes the stop signal within tens of milliseconds of
//! [`ServerHandle`] dropping; no thread is ever parked unwakeably in a
//! syscall.
//!
//! The hot path holds no locks: readers share the immutable
//! [`crate::QueryPlanner`] (an `Arc` of the published index) and a
//! per-thread reusable output buffer.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sibling_executor::{ResidentCtx, ThreadPool};

use crate::planner::QueryPlanner;

/// How long an accept/read blocks before re-checking the stop signal.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Where to serve.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP listen address, e.g. `127.0.0.1:7700` (port `0` picks one).
    Tcp(String),
    /// A unix-domain socket path (removed on shutdown).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A bound listener of either flavor.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn try_clone(&self) -> io::Result<Listener> {
        Ok(match self {
            Listener::Tcp(l) => Listener::Tcp(l.try_clone()?),
            #[cfg(unix)]
            Listener::Unix(l) => Listener::Unix(l.try_clone()?),
        })
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }
}

/// An accepted connection of either flavor.
pub(crate) enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn prepare(&self, read_timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(read_timeout)?;
                // Request/response round-trips: answer latency beats
                // segment coalescing.
                s.set_nodelay(true)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(read_timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound-but-not-yet-serving server. Binding is split from serving so
/// the caller can print the resolved endpoint (e.g. the picked TCP port)
/// before the readers start.
pub struct Server {
    listener: Listener,
    endpoint: String,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds the endpoint. A stale unix socket file at the path is
    /// replaced (the previous daemon is assumed dead; a live one would
    /// have the file open, and its readers keep serving their fd).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Server> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let endpoint = format!("tcp://{}", listener.local_addr()?);
                Ok(Server {
                    listener: Listener::Tcp(listener),
                    endpoint,
                    socket_path: None,
                })
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok(Server {
                    listener: Listener::Unix(listener),
                    endpoint: format!("unix://{}", path.display()),
                    socket_path: Some(path.clone()),
                })
            }
        }
    }

    /// The resolved endpoint (`tcp://HOST:PORT` or `unix://PATH`) — what
    /// [`crate::Client::connect`] accepts.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Starts `readers` resident reader threads on `pool` and returns
    /// the running server's handle. The pool is moved in: the server owns
    /// it for the rest of its life, and dropping the handle stops the
    /// readers and joins them (via the pool's own shutdown signal).
    pub fn start(
        self,
        planner: QueryPlanner,
        pool: ThreadPool,
        readers: usize,
    ) -> io::Result<ServerHandle> {
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        for _ in 0..readers.max(1) {
            let listener = self.listener.try_clone()?;
            let planner = planner.clone();
            let stop = Arc::clone(&stop);
            pool.spawn_resident(move |ctx| reader_loop(listener, planner, stop, ctx));
        }
        Ok(ServerHandle {
            pool: Some(pool),
            stop,
            endpoint: self.endpoint,
            socket_path: self.socket_path,
        })
    }
}

/// A running server. Dropping it stops and joins every reader thread and
/// removes the unix socket file, if any.
pub struct ServerHandle {
    pool: Option<ThreadPool>,
    stop: Arc<AtomicBool>,
    endpoint: String,
    socket_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The resolved endpoint (see [`Server::endpoint`]).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Blocks the calling thread until the process is killed — the
    /// daemon's steady state after printing its readiness line.
    pub fn park_forever(&self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Joins workers then residents; readers poll the stop flag at
        // least every POLL_INTERVAL, so this returns promptly.
        drop(self.pool.take());
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One reader thread: accept, serve the connection to EOF, repeat.
fn reader_loop(listener: Listener, planner: QueryPlanner, stop: Arc<AtomicBool>, ctx: ResidentCtx) {
    let stopping =
        |stop: &AtomicBool, ctx: &ResidentCtx| stop.load(Ordering::Acquire) || ctx.stopping();
    let mut out = String::new();
    while !stopping(&stop, &ctx) {
        match listener.accept() {
            Ok(conn) => {
                // Transport errors end the connection, never the reader.
                let _ = serve_conn(&planner, conn, &mut out, || stopping(&stop, &ctx));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept failures (e.g. peer reset mid-handshake).
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Serves one connection until EOF or transport error. `stopping` is
/// polled whenever a read times out with no pending data; `true` ends
/// the connection (shutdown).
fn serve_conn(
    planner: &QueryPlanner,
    conn: Conn,
    out: &mut String,
    mut stopping: impl FnMut() -> bool,
) -> io::Result<()> {
    conn.prepare(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                planner.answer_line(&line, out);
                reader.get_mut().write_all(out.as_bytes())?;
                line.clear();
            }
            // Timeout: `read_line` keeps any partial line in `line`
            // (documented for `read_until`), so resuming is lossless.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stopping() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
