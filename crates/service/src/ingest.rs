//! The write half of a live daemon: the [`IngestSink`] the writer
//! thread drives, and [`LiveWindow`] — the durable implementation
//! combining the incremental [`EpochState`] with a write-ahead
//! [`IngestJournal`] and (optionally) snapshot-store compaction.
//!
//! # Durability protocol
//!
//! Every accepted delta follows the same order:
//!
//! 1. **Journal** — the delta is appended (checksummed, fsynced) to the
//!    write-ahead journal *before* anything else. From this point the
//!    delta survives a crash.
//! 2. **Apply** — [`EpochState::ingest`] patches the private generation
//!    and builds the replacement index. Any failure or panic here rolls
//!    back to the committed generation; the journaled record stays, and
//!    replay re-applies it at the next startup (so a crash between
//!    append and publish loses nothing).
//! 3. **Publish** — one [`PublishedWindow::swap`]: readers pinning the
//!    next request see the new epoch, in-flight requests finish on the
//!    one they pinned.
//! 4. **Compact** (append months, with a store) — the previous tail
//!    month (with every retarget since its own compaction folded in)
//!    and the new tail month are written to the snapshot store, then
//!    the journal is truncated. A failure anywhere in this step is
//!    tolerated: the journal still holds the deltas, so durability is
//!    unbroken and compaction simply retries at the next append.
//!
//! [`LiveWindow::recover`] is the inverse: open the journal (discarding
//! a torn tail), re-apply every record the committed window does not
//! already contain, publish once, and compact what replay added.

use std::path::Path;
use std::sync::Arc;

use sibling_bgp::RibSource;
use sibling_core::{EpochState, PublishedWindow, WindowQueryIndex};
use sibling_dns::{DnsSnapshot, IngestJournal, SnapshotDelta, SnapshotStore};

use crate::replicate::{DeltaFeed, HealthGauges};

/// What the server's writer thread drives: apply one delta durably and
/// return the epoch it published. `Err` means the delta was rejected or
/// rolled back — the serving window is unchanged and the sink must stay
/// usable for the next delta.
pub trait IngestSink: Send {
    /// Applies `delta` end to end (journal, apply, publish, compact)
    /// and returns the new published epoch.
    fn ingest(&mut self, delta: &SnapshotDelta) -> Result<u64, String>;
}

/// What [`LiveWindow::recover`] found and did at startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverReport {
    /// Journal records re-applied (the window had crashed, or stopped,
    /// before compacting them).
    pub replayed: usize,
    /// Journal records whose effect the committed window already
    /// carried (compaction raced the crash) — skipped idempotently.
    pub skipped: usize,
    /// Bytes of torn tail record the journal discarded (a crash mid-
    /// append; the record never acked, so discarding loses nothing).
    pub discarded_bytes: u64,
}

/// The durable live window: epoch-published reads over a write-ahead
/// journaled ingest path.
pub struct LiveWindow<R: RibSource + Clone> {
    epoch: EpochState<R>,
    journal: IngestJournal,
    store: Option<SnapshotStore>,
    published: Arc<PublishedWindow>,
    /// The replication feed a primary publishes each accepted delta to
    /// — `None` everywhere else (static daemons, followers, tests).
    feed: Option<Arc<DeltaFeed>>,
    /// Serving gauges kept in sync with the journal's durability
    /// backlog, when a daemon reports them via `health`.
    gauges: Option<Arc<HealthGauges>>,
}

impl<R: RibSource + Clone> std::fmt::Debug for LiveWindow<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveWindow")
            .field("tail", &self.epoch.tail_date())
            .field("epoch", &self.published.epoch())
            .field("journal", &self.journal.path())
            .field("compacts", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl<R: RibSource + Clone> LiveWindow<R> {
    /// Opens (creating if absent) the journal at `journal_path`, replays
    /// every surviving record into `epoch`, publishes the recovered
    /// window once, and compacts what replay added. `epoch`/`index` come
    /// from [`EpochState::seed`] over the offline-built window.
    ///
    /// Replay is idempotent against every crash point of the ingest
    /// protocol (see the module docs): records whose months the window
    /// already carries are skipped, retargets of the tail month are
    /// re-applied (applying a retarget twice is a no-op), and appends
    /// extend the tail.
    ///
    /// The recovered window publishes at its *durable* epoch, `1 +`
    /// the journal's last sequence number ([`IngestJournal::last_seq`],
    /// which survives restarts and compactions) — so the epoch numbers
    /// replication cursors are keyed by never regress across a crash.
    pub fn recover(
        epoch: EpochState<R>,
        index: Arc<WindowQueryIndex>,
        journal_path: &Path,
        store: Option<SnapshotStore>,
    ) -> Result<(Self, RecoverReport), String> {
        Self::recover_replicating(epoch, index, journal_path, store, None)
    }

    /// [`LiveWindow::recover`] for a replication primary: every journal
    /// record is re-published into `feed` under its durable epoch
    /// (`base_seq + position + 2`), so followers resyncing after the
    /// restart find everything the journal still holds.
    pub fn recover_replicating(
        epoch: EpochState<R>,
        index: Arc<WindowQueryIndex>,
        journal_path: &Path,
        store: Option<SnapshotStore>,
        feed: Option<Arc<DeltaFeed>>,
    ) -> Result<(Self, RecoverReport), String> {
        let (journal, replay) = IngestJournal::open(journal_path)
            .map_err(|e| format!("ingest journal {}: {e}", journal_path.display()))?;
        let start_epoch = 1 + journal.last_seq();
        let mut live = Self {
            epoch,
            journal,
            store,
            published: Arc::new(PublishedWindow::new_at(start_epoch, index)),
            feed,
            gauges: None,
        };
        if let Some(feed) = &live.feed {
            // Re-publish the surviving records under their durable
            // epochs — including ones replay will skip below: a
            // follower that already carries them skips them too.
            for (position, delta) in replay.deltas.iter().enumerate() {
                feed.publish(replay.base_seq + position as u64 + 2, delta);
            }
            feed.seed_epoch(start_epoch);
        }
        let mut report = RecoverReport {
            discarded_bytes: replay.discarded_bytes,
            ..RecoverReport::default()
        };
        let mut recovered = None;
        for delta in &replay.deltas {
            let tail = live.epoch.tail_date();
            // Skip records the committed window already carries: months
            // before the tail, and appends *onto* the tail (compaction
            // wrote them to the store before the crash).
            if delta.to_date() < tail || (delta.to_date() == tail && delta.from_date() < tail) {
                report.skipped += 1;
                continue;
            }
            // `reset_on_compact: false` — resetting the journal while
            // later records still wait to replay would un-journal them
            // before they are re-applied, losing acked deltas to a
            // second crash. One reset happens below, after everything.
            let (index, _) = live.apply(delta, false).map_err(|e| {
                format!(
                    "replaying journaled delta {}..{}: {e}",
                    delta.from_date(),
                    delta.to_date()
                )
            })?;
            recovered = Some(index);
            report.replayed += 1;
        }
        if let Some(index) = recovered {
            // Install the replayed index without advancing the epoch:
            // the replayed deltas consumed their sequence numbers (and
            // therefore epochs) when they were first accepted, and the
            // starting epoch above already accounts for them.
            live.published.republish(index);
            // Everything replayed; fold the recovered tail (including
            // trailing retargets) into the store, then the journal can
            // start empty. No store: the journal stays — it IS the
            // durability.
            if let Some(store) = &live.store {
                if store.write(&**live.epoch.tail_snapshot()).is_ok() {
                    let _ = live.journal.reset();
                }
            }
        }
        Ok((live, report))
    }

    /// The publication cell readers pin — hand it to
    /// [`crate::QueryPlanner::live`].
    pub fn published(&self) -> Arc<PublishedWindow> {
        Arc::clone(&self.published)
    }

    /// The committed tail month.
    pub fn tail_date(&self) -> sibling_net_types::MonthDate {
        self.epoch.tail_date()
    }

    /// Journal bytes currently awaiting compaction.
    pub fn journal_backlog(&self) -> u64 {
        self.journal.record_bytes()
    }

    /// Attaches serving gauges and primes their journal readings; every
    /// subsequent ingest (and compaction) keeps them current.
    pub fn attach_gauges(&mut self, gauges: Arc<HealthGauges>) {
        self.gauges = Some(gauges);
        self.sync_gauges();
    }

    fn sync_gauges(&self) {
        if let Some(gauges) = &self.gauges {
            gauges.set_journal(self.journal.record_bytes(), self.journal.record_count());
        }
    }

    /// Whether the committed window already carries `delta`'s effect —
    /// the same skip rule recovery replay uses, extended to detect
    /// re-sent tail retargets (a replication feed resync re-serves
    /// deltas a follower may have applied before the reconnect).
    fn already_carried(&self, delta: &SnapshotDelta) -> bool {
        let tail = self.epoch.tail_date();
        if delta.to_date() < tail || (delta.to_date() == tail && delta.from_date() < tail) {
            return true;
        }
        if delta.to_date() == tail && delta.from_date() == tail {
            // A tail retarget: already carried exactly when re-applying
            // it changes nothing.
            let snapshot = self.epoch.tail_snapshot();
            return delta.apply(snapshot) == **snapshot;
        }
        false
    }

    /// Applies one replication-feed delta through the full durable
    /// ingest path — unless the window already carries it, which is
    /// skipped (`Ok(None)`) rather than re-journaled. This is what
    /// makes a follower's apply path idempotent under feed resyncs:
    /// each delta advances the local epoch exactly once, no matter how
    /// often the primary re-serves it.
    pub fn ingest_feed(&mut self, delta: &SnapshotDelta) -> Result<Option<u64>, String>
    where
        R: Send,
        EpochState<R>: Send,
    {
        if self.already_carried(delta) {
            self.sync_gauges();
            return Ok(None);
        }
        self.ingest(delta).map(Some)
    }

    /// Applies one delta to the epoch state and compacts if it appended
    /// a month. Shared by live ingest and recovery replay; does NOT
    /// journal (live ingest journals first, replay reads the journal)
    /// and does NOT publish (the callers differ on when). The journal
    /// is truncated after a successful compaction only when
    /// `reset_on_compact` — replay defers that to its end.
    fn apply(
        &mut self,
        delta: &SnapshotDelta,
        reset_on_compact: bool,
    ) -> Result<(Arc<WindowQueryIndex>, bool), String> {
        let old_tail: Arc<DnsSnapshot> = Arc::clone(self.epoch.tail_snapshot());
        let appended = delta.to_date() > old_tail.date();
        let index = self
            .epoch
            .ingest(delta, || {
                // Failpoint: a crash (panic) or failure between the
                // journal append and the index publication — the window
                // must roll back, the journal record must survive.
                sibling_failpoint::io_point("ingest::publish")
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            })
            .map_err(|e| e.to_string())?;
        let mut compacted = false;
        if appended {
            if let Some(store) = &self.store {
                // Compaction failure is not an ingest failure: the
                // journal still holds the deltas, so durability is
                // intact and the next append retries.
                compacted = store
                    .write(&*old_tail)
                    .and_then(|_| store.write(&**self.epoch.tail_snapshot()))
                    .is_ok();
                if compacted && reset_on_compact {
                    compacted = self.journal.reset().is_ok();
                }
            }
        }
        Ok((index, compacted))
    }
}

impl<R: RibSource + Clone> IngestSink for LiveWindow<R>
where
    R: Send,
    EpochState<R>: Send,
{
    fn ingest(&mut self, delta: &SnapshotDelta) -> Result<u64, String> {
        // Reject malformed deltas before anything durable happens — a
        // journaled record must always replay cleanly, so validation
        // precedes the write-ahead append.
        self.epoch.validate(delta).map_err(|e| e.to_string())?;
        // Failpoint: a crash or failure after validation, before the
        // journal append (the delta is simply lost, never half-durable).
        sibling_failpoint::io_point("ingest::apply").map_err(|e| e.to_string())?;
        // Write-ahead: the delta is durable before it is applied.
        self.journal.append(delta).map_err(|e| e.to_string())?;
        let (index, _) = self.apply(delta, true)?;
        let epoch = self.published.swap(index);
        if let Some(feed) = &self.feed {
            feed.publish(epoch, delta);
        }
        self.sync_gauges();
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    use sibling_bgp::{Rib, RibArchive};
    use sibling_core::{DetectEngine, EngineConfig, SiblingSet};
    use sibling_dns::DomainId;
    use sibling_net_types::{Asn, Ipv4Prefix, Ipv6Prefix, MonthDate};

    fn a4(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<std::net::Ipv6Addr>().unwrap().into()
    }

    fn rib() -> Rib {
        let mut rib = Rib::new();
        rib.announce("203.0.0.0/16".parse::<Ipv4Prefix>().unwrap(), Asn(1));
        rib.announce("198.51.0.0/16".parse::<Ipv4Prefix>().unwrap(), Asn(2));
        rib.announce("2600:1::/32".parse::<Ipv6Prefix>().unwrap(), Asn(1));
        rib.announce("2600:2::/32".parse::<Ipv6Prefix>().unwrap(), Asn(2));
        rib
    }

    fn archive() -> RibArchive {
        let mut archive = RibArchive::new();
        archive.insert(MonthDate::new(2024, 1), rib());
        archive
    }

    fn month(k: u8) -> MonthDate {
        MonthDate::new(2024, k)
    }

    fn snap(date: MonthDate, entries: &[(u32, &str, &str)]) -> Arc<DnsSnapshot> {
        let mut s = DnsSnapshot::new(date);
        for (id, v4, v6) in entries {
            s.merge(DomainId(*id), vec![a4(v4)], vec![a6(v6)]);
        }
        Arc::new(s)
    }

    fn recompute(snaps: &[Arc<DnsSnapshot>]) -> Vec<(MonthDate, SiblingSet)> {
        let mut engine = DetectEngine::default();
        let dates: Vec<MonthDate> = snaps.iter().map(|s| s.date()).collect();
        let by_date: std::collections::BTreeMap<MonthDate, Arc<DnsSnapshot>> =
            snaps.iter().map(|s| (s.date(), Arc::clone(s))).collect();
        engine
            .run_window(dates[0], *dates.last().unwrap(), &archive(), |d| {
                Arc::clone(&by_date[&d])
            })
            .unwrap()
            .results
    }

    /// Seeds the offline window over `snaps` — what the CLI rebuilds at
    /// startup from worldgen or the snapshot store before recovery.
    fn seeded(snaps: &[Arc<DnsSnapshot>]) -> (EpochState<Arc<Rib>>, Arc<WindowQueryIndex>) {
        EpochState::seed(
            EngineConfig::default(),
            archive(),
            recompute(snaps),
            Arc::clone(snaps.last().unwrap()),
        )
        .unwrap()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sibling-live-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The window's observable read surface, for bit-identity checks.
    fn rows(index: &WindowQueryIndex) -> Vec<String> {
        index.stats().map(|s| s.batch_row()).collect()
    }

    fn fixture() -> (Arc<DnsSnapshot>, Arc<DnsSnapshot>, Arc<DnsSnapshot>) {
        let s1 = snap(
            month(1),
            &[
                (1, "203.0.1.1", "2600:1::1"),
                (2, "203.0.1.2", "2600:2::2"),
                (3, "198.51.1.3", "2600:2::3"),
            ],
        );
        // Month 2: domain 2 moves org (an append-month delta)…
        let s2 = snap(
            month(2),
            &[
                (1, "203.0.1.1", "2600:1::1"),
                (2, "198.51.1.2", "2600:2::2"),
                (3, "198.51.1.3", "2600:2::3"),
            ],
        );
        // …then domain 1 retargets within month 2.
        let s2b = snap(
            month(2),
            &[
                (1, "203.0.1.1", "2600:2::1"),
                (2, "198.51.1.2", "2600:2::2"),
                (3, "198.51.1.3", "2600:2::3"),
            ],
        );
        (s1, s2, s2b)
    }

    #[test]
    fn ingest_survives_restart_via_journal_replay() {
        let dir = scratch("replay");
        let journal = dir.join("ingest.sibjrnl");
        let (s1, s2, s2b) = fixture();

        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (mut live, report) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
        assert_eq!(report, RecoverReport::default());
        assert_eq!(live.published().epoch(), 1);

        assert_eq!(live.ingest(&SnapshotDelta::diff(&s1, &s2)).unwrap(), 2);
        assert_eq!(live.ingest(&SnapshotDelta::diff(&s2, &s2b)).unwrap(), 3);
        assert_eq!(live.tail_date(), month(2));
        assert!(live.journal_backlog() > 0, "no store: journal retained");
        let served = live.published().pin();
        assert_eq!(served.index().months(), &[month(1), month(2)]);

        // "Restart": rebuild the offline window (month 1 only — months
        // 2's deltas lived only in the journal) and recover.
        drop(live);
        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (live, report) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
        assert_eq!((report.replayed, report.skipped), (2, 0));
        assert_eq!(report.discarded_bytes, 0);
        assert_eq!(live.tail_date(), month(2));
        // The epoch is durable: 1 + the journal's sequence number, the
        // same number the pre-restart daemon last published — so
        // replication cursors keyed by it never alias across a crash.
        assert_eq!(live.published().epoch(), 3);

        // Bit-identical to a batch recompute over the final snapshots.
        let reference = Arc::new(WindowQueryIndex::build(&recompute(&[s1, s2b])).unwrap());
        let recovered = live.published().pin();
        assert_eq!(recovered.index().months(), reference.months());
        assert_eq!(rows(recovered.index()), rows(&reference));
    }

    #[test]
    fn malformed_deltas_never_reach_the_journal() {
        let dir = scratch("validate");
        let journal = dir.join("ingest.sibjrnl");
        let (s1, s2, s2b) = fixture();

        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (mut live, _) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
        // Non-contiguous: base month 2, tail month 1.
        let err = live.ingest(&SnapshotDelta::diff(&s2, &s2b)).unwrap_err();
        assert!(err.contains("2024-02"), "{err}");
        assert_eq!(live.journal_backlog(), 0, "rejected delta journaled");
        assert_eq!(live.published().epoch(), 1);

        // A restart replays nothing and serves the seeded window.
        drop(live);
        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (live, report) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
        assert_eq!(report, RecoverReport::default());
        assert_eq!(live.tail_date(), month(1));
    }

    #[test]
    fn compaction_moves_durability_from_journal_to_store() {
        let dir = scratch("compact");
        let journal = dir.join("ingest.sibjrnl");
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        let (s1, s2, s2b) = fixture();

        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let store = SnapshotStore::open(&store_dir).unwrap();
        let (mut live, _) = LiveWindow::recover(epoch, index, &journal, Some(store)).unwrap();

        // An append compacts: both tail months land in the store and
        // the journal empties.
        live.ingest(&SnapshotDelta::diff(&s1, &s2)).unwrap();
        let store = SnapshotStore::open(&store_dir).unwrap();
        assert!(store.contains(month(1)) && store.contains(month(2)));
        assert_eq!(live.journal_backlog(), 0);

        // A retarget does not compact — it waits in the journal for the
        // next append (or the next recovery).
        live.ingest(&SnapshotDelta::diff(&s2, &s2b)).unwrap();
        assert!(live.journal_backlog() > 0);

        // Recovery folds the waiting retarget into the stored tail
        // month and starts with an empty journal. The offline window is
        // seeded over the store's months — the compacted append is
        // already there, so only the retarget replays.
        drop(live);
        let (epoch, index) = seeded(&[Arc::clone(&s1), Arc::clone(&s2)]);
        let store = SnapshotStore::open(&store_dir).unwrap();
        let (live, report) = LiveWindow::recover(epoch, index, &journal, Some(store)).unwrap();
        assert_eq!((report.replayed, report.skipped), (1, 0));
        assert_eq!(live.journal_backlog(), 0);
        let stored = SnapshotStore::open(&store_dir)
            .unwrap()
            .load(month(2))
            .unwrap();
        assert_eq!(DnsSnapshot::materialize(&*stored), *s2b);
    }

    #[test]
    fn feed_publishes_live_and_recovered_deltas_under_durable_epochs() {
        use crate::replicate::DeltaFeed;
        let dir = scratch("feed");
        let journal = dir.join("ingest.sibjrnl");
        let (s1, s2, s2b) = fixture();

        // A live primary: each accepted delta lands in the feed under
        // the epoch it published.
        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let feed = Arc::new(DeltaFeed::new());
        let (mut live, _) =
            LiveWindow::recover_replicating(epoch, index, &journal, None, Some(Arc::clone(&feed)))
                .unwrap();
        assert_eq!(feed.collect_since(0).current, 1);
        live.ingest(&SnapshotDelta::diff(&s1, &s2)).unwrap();
        live.ingest(&SnapshotDelta::diff(&s2, &s2b)).unwrap();
        let batch = feed.collect_since(0);
        assert_eq!((batch.floor, batch.current), (1, 3));
        assert_eq!(
            batch.deltas.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![2, 3]
        );

        // A restarted primary re-seeds a fresh feed from the journal
        // under the same durable epochs.
        drop(live);
        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let feed = Arc::new(DeltaFeed::new());
        let (live, _) =
            LiveWindow::recover_replicating(epoch, index, &journal, None, Some(Arc::clone(&feed)))
                .unwrap();
        let reseeded = feed.collect_since(0);
        assert_eq!((reseeded.floor, reseeded.current), (1, 3));
        assert_eq!(
            reseeded.deltas.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(live.published().epoch(), 3);
    }

    #[test]
    fn ingest_feed_applies_each_delta_exactly_once() {
        let dir = scratch("ingest-feed");
        let journal = dir.join("follower.sibjrnl");
        let (s1, s2, s2b) = fixture();
        let append = SnapshotDelta::diff(&s1, &s2);
        let retarget = SnapshotDelta::diff(&s2, &s2b);

        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (mut live, _) = LiveWindow::recover(epoch, index, &journal, None).unwrap();

        // First delivery applies; re-delivery (a feed resync) skips.
        assert_eq!(live.ingest_feed(&append).unwrap(), Some(2));
        assert_eq!(live.ingest_feed(&append).unwrap(), None);
        assert_eq!(live.ingest_feed(&retarget).unwrap(), Some(3));
        assert_eq!(live.ingest_feed(&retarget).unwrap(), None);
        assert_eq!(live.published().epoch(), 3, "skips never advance");
        assert_eq!(live.tail_date(), month(2));

        // The skipped re-deliveries were not re-journaled: a restart
        // replays exactly the two applied deltas.
        drop(live);
        let (epoch, index) = seeded(std::slice::from_ref(&s1));
        let (live, report) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
        assert_eq!((report.replayed, report.skipped), (2, 0));
        assert_eq!(live.published().epoch(), 3);
        let reference = Arc::new(WindowQueryIndex::build(&recompute(&[s1, s2b])).unwrap());
        assert_eq!(rows(live.published().pin().index()), rows(&reference));
    }

    /// Property: under ANY interleaving of ingests and queries, a query
    /// answers bit-identically to a batch recompute over exactly the
    /// months its pinned epoch carries — and pins taken earlier keep
    /// answering their own generation after later publishes.
    #[test]
    fn prop_any_interleaving_matches_batch_recompute_at_the_pinned_epoch() {
        use proptest::collection::vec;
        use proptest::test_runner::TestRunner;

        // A deterministic snapshot chain: month `k`'s entries depend on
        // `k` (domain 2 flips org with parity, so appends really churn
        // pairs), and `retargeted` flips domain 1's v6 org within the
        // month (the intra-month retarget delta).
        fn chain(k: u8, retargeted: bool) -> Arc<DnsSnapshot> {
            let v4_2 = if k.is_multiple_of(2) {
                "198.51.1.2"
            } else {
                "203.0.1.2"
            };
            let v6_1 = if retargeted { "2600:2::1" } else { "2600:1::1" };
            snap(
                month(k),
                &[
                    (1, "203.0.1.1", v6_1),
                    (2, v4_2, "2600:2::2"),
                    (3, "198.51.1.3", "2600:2::3"),
                ],
            )
        }

        let dir = scratch("prop-interleave");
        let mut case = 0u32;
        let mut runner = TestRunner::default();
        runner
            .run(&vec(0u8..3, 1..10), |ops| {
                case += 1;
                let journal = dir.join(format!("case-{case}.sibjrnl"));
                // Truth the live window must track: the materialized
                // snapshots of every month applied so far.
                let mut snaps = vec![chain(1, false)];
                let mut tail_k = 1u8;
                let mut retargeted = false;
                let (epoch, index) = seeded(&snaps);
                let (mut live, _) = LiveWindow::recover(epoch, index, &journal, None).unwrap();
                let mut expected_epoch = 1u64;
                // Pins taken at query time, with the rows they answered
                // then — re-checked after the interleaving finishes.
                let mut pins = Vec::new();
                for op in ops {
                    match op {
                        // Append the next month.
                        0 => {
                            let next = chain(tail_k + 1, false);
                            let delta = SnapshotDelta::diff(snaps.last().unwrap(), &next);
                            live.ingest(&delta).unwrap();
                            snaps.push(next);
                            tail_k += 1;
                            retargeted = false;
                            expected_epoch += 1;
                        }
                        // Retarget within the tail month (idempotent
                        // when already retargeted: an empty delta).
                        1 => {
                            let next = chain(tail_k, true);
                            let delta = SnapshotDelta::diff(snaps.last().unwrap(), &next);
                            live.ingest(&delta).unwrap();
                            *snaps.last_mut().unwrap() = next;
                            retargeted = true;
                            expected_epoch += 1;
                        }
                        // Query: pin, compare against a batch recompute
                        // over exactly the pinned months.
                        _ => {
                            let pin = live.published().pin();
                            let batch = WindowQueryIndex::build(&recompute(&snaps)).unwrap();
                            assert_eq!(pin.epoch(), expected_epoch);
                            assert_eq!(
                                rows(pin.index()),
                                rows(&batch),
                                "pinned epoch {} diverged from batch recompute (tail {}, \
                                 retargeted {retargeted})",
                                pin.epoch(),
                                month(tail_k)
                            );
                            pins.push((pin, rows(&batch)));
                        }
                    }
                }
                assert_eq!(live.published().epoch(), expected_epoch);
                // Earlier pins still answer their own generation.
                for (pin, rows_then) in &pins {
                    assert_eq!(
                        &rows(pin.index()),
                        rows_then,
                        "pin {} disturbed",
                        pin.epoch()
                    );
                }
                Ok(())
            })
            .unwrap();
    }
}
