//! The service's line protocol: request grammar, typed errors, response
//! framing.
//!
//! Requests are single lines, whitespace-separated:
//!
//! ```text
//! ping                          liveness check
//! months                        the loaded months, ascending
//! stats [M]                     batch-table row(s): whole window or one month
//! siblings P4 P6 M              point query: is (P4, P6) a pair in month M?
//! partners P M K                top-K partners of prefix P (either family)
//!                               in month M; K = 0 means the full ranked run
//! pair P4 P6 FROM..TO           history of (P4, P6) over the month range
//! epoch                         the currently published epoch number
//! health                        daemon health: months, epoch, ingest lag,
//!                               shed/timeout counters
//! ingest HEX                    apply one hex-armored snapshot delta
//!                               (journal payload encoding); writer daemons
//!                               only
//! sub FROM-EPOCH                the replication feed: a `feed FLOOR
//!                               CURRENT` bounds line, then every retained
//!                               delta published after FROM-EPOCH, one
//!                               `EPOCH HEX` line each (same armor as
//!                               `ingest`); feed-publishing daemons only
//! ```
//!
//! Responses are `ok N` followed by exactly `N` data lines, or a single
//! `err <code> <message>` line. Every malformed request maps to a typed
//! [`ProtocolError`] — the connection survives; only transport failures
//! disconnect.
//!
//! `sub` is how a follower daemon tails a primary. The first data line,
//! `feed FLOOR CURRENT`, carries the feed's bounds: nothing at or below
//! epoch `FLOOR` is retained any more (the follower's bootstrap store
//! must cover it) and `CURRENT` is the primary's published epoch — what
//! a caught-up cursor reads. Each following line is the epoch a delta
//! published plus the delta itself in the journal's payload encoding
//! ([`sibling_dns::encode_delta`]) — the byte-identical codec `SIBJRNL`
//! persists, so the feed and the journal cannot drift. Followers poll
//! with their last applied epoch as the cursor; a bounds-only answer
//! with `CURRENT` equal to the cursor means they are caught up.

use std::fmt;

use sibling_dns::SnapshotDelta;
use sibling_net_types::{AnyPrefix, Ipv4Prefix, Ipv6Prefix, MonthDate};

/// A parsed request — one per protocol verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `ping`
    Ping,
    /// `months`
    Months,
    /// `stats [M]`
    Stats {
        /// Restrict to one month; `None` renders the whole window.
        month: Option<MonthDate>,
    },
    /// `siblings P4 P6 M`
    Point {
        /// The IPv4 side of the candidate pair.
        v4: Ipv4Prefix,
        /// The IPv6 side of the candidate pair.
        v6: Ipv6Prefix,
        /// The month to look in.
        month: MonthDate,
    },
    /// `partners P M K`
    Partners {
        /// The prefix whose partners are ranked (either family).
        prefix: AnyPrefix,
        /// The month to look in.
        month: MonthDate,
        /// Result cap; `0` returns the full ranked run.
        k: usize,
    },
    /// `pair P4 P6 FROM..TO`
    History {
        /// The IPv4 side of the pair.
        v4: Ipv4Prefix,
        /// The IPv6 side of the pair.
        v6: Ipv6Prefix,
        /// First month of the range (inclusive).
        from: MonthDate,
        /// Last month of the range (inclusive).
        to: MonthDate,
    },
    /// `epoch`
    Epoch,
    /// `health`
    Health,
    /// `ingest HEX` — one snapshot delta, hex-armored in the journal's
    /// payload encoding ([`sibling_dns::encode_delta`]).
    Ingest(SnapshotDelta),
    /// `sub FROM-EPOCH` — the replication feed: every retained delta
    /// published after `from_epoch`, one `EPOCH HEX` line each.
    Subscribe {
        /// The follower's cursor: the epoch of the last delta it
        /// applied (0 = everything the feed retains).
        from_epoch: u64,
    },
}

impl Request {
    /// The request's verb — the first word of its wire form.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Months => "months",
            Request::Stats { .. } => "stats",
            Request::Point { .. } => "siblings",
            Request::Partners { .. } => "partners",
            Request::History { .. } => "pair",
            Request::Epoch => "epoch",
            Request::Health => "health",
            Request::Ingest(_) => "ingest",
            Request::Subscribe { .. } => "sub",
        }
    }
}

/// Lower-case hex of `bytes` — the armor for `ingest` payloads, which
/// must survive a whitespace-separated line protocol.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes hex produced by [`to_hex`] (either case). `None` on odd
/// length or a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some(((hi << 4) | lo) as u8)
        })
        .collect()
}

impl fmt::Display for Request {
    /// Renders the canonical request line (no trailing newline). Encoding
    /// then parsing round-trips to an equal request.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Ping => write!(f, "ping"),
            Request::Months => write!(f, "months"),
            Request::Stats { month: None } => write!(f, "stats"),
            Request::Stats { month: Some(m) } => write!(f, "stats {m}"),
            Request::Point { v4, v6, month } => write!(f, "siblings {v4} {v6} {month}"),
            Request::Partners { prefix, month, k } => write!(f, "partners {prefix} {month} {k}"),
            Request::History { v4, v6, from, to } => write!(f, "pair {v4} {v6} {from}..{to}"),
            Request::Epoch => write!(f, "epoch"),
            Request::Health => write!(f, "health"),
            Request::Ingest(delta) => {
                write!(f, "ingest {}", to_hex(&sibling_dns::encode_delta(delta)))
            }
            Request::Subscribe { from_epoch } => write!(f, "sub {from_epoch}"),
        }
    }
}

/// A typed protocol-level failure. Rendered as `err <code> <message>`;
/// the serving connection stays open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was empty (or all whitespace).
    Empty,
    /// The first word is not a known verb.
    UnknownVerb(String),
    /// A known verb with the wrong argument shape.
    Usage {
        /// The verb that was recognized.
        verb: &'static str,
        /// Its expected argument grammar.
        usage: &'static str,
    },
    /// An argument failed to parse.
    BadArg {
        /// Which argument (e.g. `"v4 prefix"`, `"month"`).
        what: &'static str,
        /// The offending input token.
        input: String,
        /// Parser detail.
        detail: String,
    },
    /// A month outside the loaded window.
    OutOfWindow {
        /// The requested month.
        month: MonthDate,
        /// First loaded month.
        first: MonthDate,
        /// Last loaded month.
        last: MonthDate,
    },
    /// The server is saturated and shed this work instead of queueing
    /// it: a connection beyond the cap, or an expensive verb under
    /// pressure. Retryable — the client backs off and tries again.
    Busy {
        /// What was shed (`"connection"` or the verb, e.g. `"partners"`).
        what: &'static str,
        /// Connections currently being served.
        active: usize,
        /// The configured connection cap.
        max: usize,
    },
    /// A request (or its slow-arriving line) exceeded the per-request
    /// deadline; the server closes the connection after this response.
    Timeout {
        /// What timed out (`"request"` or `"idle connection"`).
        what: &'static str,
        /// The budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
    /// An `ingest` was sent to a daemon serving a static window (no
    /// `--ingest` journal). Not retryable against this daemon.
    ReadOnly,
    /// An accepted `ingest` failed to apply — validation, journal, or
    /// publication. The daemon has rolled back to its last published
    /// epoch; the message carries the underlying cause.
    IngestFailed {
        /// The underlying failure, rendered.
        detail: String,
    },
    /// A `sub` was sent to a daemon that publishes no replication feed
    /// (a static window, or a follower — followers do not re-publish).
    /// Not retryable against this daemon.
    NoFeed,
}

impl ProtocolError {
    /// The stable machine-readable error code (the token after `err`).
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Empty => "empty",
            ProtocolError::UnknownVerb(_) => "unknown-verb",
            ProtocolError::Usage { .. } => "usage",
            ProtocolError::BadArg { .. } => "bad-arg",
            ProtocolError::OutOfWindow { .. } => "out-of-window",
            ProtocolError::Busy { .. } => "busy",
            ProtocolError::Timeout { .. } => "timeout",
            ProtocolError::ReadOnly => "read-only",
            ProtocolError::IngestFailed { .. } => "ingest-failed",
            ProtocolError::NoFeed => "no-feed",
        }
    }

    /// Whether a client may transparently retry after backing off —
    /// true only for load shedding, where the request itself is fine.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ProtocolError::Busy { .. })
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty request line"),
            ProtocolError::UnknownVerb(verb) => write!(
                f,
                "unknown verb {verb:?} (ping|months|stats|siblings|partners|pair|epoch|health|ingest|sub)"
            ),
            ProtocolError::Usage { verb, usage } => write!(f, "usage: {verb} {usage}"),
            ProtocolError::BadArg {
                what,
                input,
                detail,
            } => write!(f, "bad {what} {input:?}: {detail}"),
            ProtocolError::OutOfWindow { month, first, last } => {
                write!(f, "month {month} outside loaded window {first}..{last}")
            }
            ProtocolError::Busy { what, active, max } => {
                write!(
                    f,
                    "server saturated ({active}/{max} connections), shed {what}; retry with backoff"
                )
            }
            ProtocolError::Timeout { what, budget_ms } => {
                write!(f, "{what} exceeded its {budget_ms} ms deadline")
            }
            ProtocolError::ReadOnly => {
                write!(f, "daemon serves a static window; start with --ingest to accept deltas")
            }
            ProtocolError::IngestFailed { detail } => {
                write!(f, "ingest rejected, window rolled back: {detail}")
            }
            ProtocolError::NoFeed => {
                write!(
                    f,
                    "daemon publishes no delta feed; subscribe to a primary started with --ingest"
                )
            }
        }
    }
}

fn parse_v4(what: &'static str, s: &str) -> Result<Ipv4Prefix, ProtocolError> {
    s.parse().map_err(|e| ProtocolError::BadArg {
        what,
        input: s.into(),
        detail: format!("{e:?}"),
    })
}

fn parse_v6(what: &'static str, s: &str) -> Result<Ipv6Prefix, ProtocolError> {
    s.parse().map_err(|e| ProtocolError::BadArg {
        what,
        input: s.into(),
        detail: format!("{e:?}"),
    })
}

fn parse_any(s: &str) -> Result<AnyPrefix, ProtocolError> {
    if let Ok(v4) = s.parse::<Ipv4Prefix>() {
        return Ok(AnyPrefix::V4(v4));
    }
    match s.parse::<Ipv6Prefix>() {
        Ok(v6) => Ok(AnyPrefix::V6(v6)),
        Err(e) => Err(ProtocolError::BadArg {
            what: "prefix",
            input: s.into(),
            detail: format!("neither IPv4 nor IPv6 prefix ({e:?})"),
        }),
    }
}

/// Truncates a long token (an ingest hex blob can run to megabytes) so
/// the offending input quoted in an error stays one readable line.
fn abbreviate(s: &str) -> String {
    const KEEP: usize = 32;
    if s.len() <= KEEP {
        s.into()
    } else {
        format!("{}… ({} chars)", &s[..KEEP], s.len())
    }
}

fn parse_month(s: &str) -> Result<MonthDate, ProtocolError> {
    s.parse().map_err(|e: String| ProtocolError::BadArg {
        what: "month",
        input: s.into(),
        detail: e,
    })
}

/// Parses one request line. Leading/trailing whitespace is ignored; any
/// failure is a typed [`ProtocolError`].
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or(ProtocolError::Empty)?;
    let args: Vec<&str> = words.collect();
    let usage = |verb, usage| ProtocolError::Usage { verb, usage };
    match verb {
        "ping" => match args[..] {
            [] => Ok(Request::Ping),
            _ => Err(usage("ping", "(no arguments)")),
        },
        "months" => match args[..] {
            [] => Ok(Request::Months),
            _ => Err(usage("months", "(no arguments)")),
        },
        "stats" => match args[..] {
            [] => Ok(Request::Stats { month: None }),
            [m] => Ok(Request::Stats {
                month: Some(parse_month(m)?),
            }),
            _ => Err(usage("stats", "[YYYY-MM]")),
        },
        "siblings" => match args[..] {
            [v4, v6, m] => Ok(Request::Point {
                v4: parse_v4("v4 prefix", v4)?,
                v6: parse_v6("v6 prefix", v6)?,
                month: parse_month(m)?,
            }),
            _ => Err(usage("siblings", "V4/LEN V6/LEN YYYY-MM")),
        },
        "partners" => match args[..] {
            [p, m, k] => Ok(Request::Partners {
                prefix: parse_any(p)?,
                month: parse_month(m)?,
                k: k.parse().map_err(|e| ProtocolError::BadArg {
                    what: "k",
                    input: k.into(),
                    detail: format!("{e} (unsigned integer, 0 = all)"),
                })?,
            }),
            _ => Err(usage("partners", "PREFIX/LEN YYYY-MM K")),
        },
        "pair" => match args[..] {
            [v4, v6, range] => {
                let (from, to) = range.split_once("..").ok_or(ProtocolError::BadArg {
                    what: "month range",
                    input: range.into(),
                    detail: "expected FROM..TO (e.g. 2024-01..2024-12)".into(),
                })?;
                let (from, to) = (parse_month(from)?, parse_month(to)?);
                if from > to {
                    return Err(ProtocolError::BadArg {
                        what: "month range",
                        input: range.into(),
                        detail: format!("range start {from} is after its end {to}"),
                    });
                }
                Ok(Request::History {
                    v4: parse_v4("v4 prefix", v4)?,
                    v6: parse_v6("v6 prefix", v6)?,
                    from,
                    to,
                })
            }
            _ => Err(usage("pair", "V4/LEN V6/LEN FROM..TO")),
        },
        "epoch" => match args[..] {
            [] => Ok(Request::Epoch),
            _ => Err(usage("epoch", "(no arguments)")),
        },
        "health" => match args[..] {
            [] => Ok(Request::Health),
            _ => Err(usage("health", "(no arguments)")),
        },
        "ingest" => match args[..] {
            [hex] => {
                let bytes = from_hex(hex).ok_or_else(|| ProtocolError::BadArg {
                    what: "delta",
                    input: abbreviate(hex),
                    detail: "not an even-length hex string".into(),
                })?;
                let delta =
                    sibling_dns::decode_delta(&bytes).map_err(|e| ProtocolError::BadArg {
                        what: "delta",
                        input: abbreviate(hex),
                        detail: e.to_string(),
                    })?;
                Ok(Request::Ingest(delta))
            }
            _ => Err(usage("ingest", "HEX-ENCODED-DELTA")),
        },
        "sub" => match args[..] {
            [from] => Ok(Request::Subscribe {
                from_epoch: from.parse().map_err(|e| ProtocolError::BadArg {
                    what: "epoch",
                    input: from.into(),
                    detail: format!("{e} (unsigned integer, 0 = everything retained)"),
                })?,
            }),
            _ => Err(usage("sub", "FROM-EPOCH")),
        },
        other => Err(ProtocolError::UnknownVerb(other.into())),
    }
}

/// A decoded response, as the [`crate::Client`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ok N` + data lines (without their trailing newlines).
    Ok(Vec<String>),
    /// `err <code> <message>`.
    Err {
        /// The machine-readable code ([`ProtocolError::code`]).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl Response {
    /// Decodes a response header line, returning how many data lines
    /// follow (`Ok(n)`), or the decoded error (`Err`). A malformed header
    /// is a transport-level failure — the peer is not speaking the
    /// protocol — reported as `io::Error`.
    pub fn decode_header(line: &str) -> std::io::Result<Result<usize, Response>> {
        let malformed = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response header {line:?}"),
            )
        };
        let line = line.trim_end_matches('\n');
        if let Some(count) = line.strip_prefix("ok ") {
            return count.trim().parse().map(Ok).map_err(|_| malformed());
        }
        if let Some(rest) = line.strip_prefix("err ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Err(Response::Err {
                code: code.into(),
                message: message.into(),
            }));
        }
        Err(malformed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> Request {
        parse_request(line).unwrap()
    }

    fn err(line: &str) -> ProtocolError {
        parse_request(line).unwrap_err()
    }

    #[test]
    fn parse_accepts_every_verb() {
        assert_eq!(req("ping"), Request::Ping);
        assert_eq!(req("months"), Request::Months);
        assert_eq!(req("stats"), Request::Stats { month: None });
        assert_eq!(
            req("stats 2024-03"),
            Request::Stats {
                month: Some(MonthDate::new(2024, 3))
            }
        );
        assert_eq!(
            req("siblings 10.0.0.0/24 2600:1::/48 2024-01"),
            Request::Point {
                v4: "10.0.0.0/24".parse().unwrap(),
                v6: "2600:1::/48".parse().unwrap(),
                month: MonthDate::new(2024, 1),
            }
        );
        assert_eq!(
            req("partners 2600:1::/48 2024-01 5"),
            Request::Partners {
                prefix: AnyPrefix::V6("2600:1::/48".parse().unwrap()),
                month: MonthDate::new(2024, 1),
                k: 5,
            }
        );
        assert_eq!(
            req("pair 10.0.0.0/24 2600:1::/48 2024-01..2024-06"),
            Request::History {
                v4: "10.0.0.0/24".parse().unwrap(),
                v6: "2600:1::/48".parse().unwrap(),
                from: MonthDate::new(2024, 1),
                to: MonthDate::new(2024, 6),
            }
        );
        assert_eq!(req("epoch"), Request::Epoch);
        assert_eq!(req("health"), Request::Health);
        assert_eq!(req("sub 42"), Request::Subscribe { from_epoch: 42 });
        // Whitespace is insignificant.
        assert_eq!(req("  ping  "), Request::Ping);
    }

    fn sample_delta() -> SnapshotDelta {
        use sibling_dns::{DnsSnapshot, DomainId, ResolvedAddrs};
        let mut a = DnsSnapshot::new(MonthDate::new(2024, 1));
        a.insert(
            DomainId(1),
            ResolvedAddrs {
                v4: vec![0x0808_0808],
                v6: vec![],
            },
        );
        let mut b = DnsSnapshot::new(MonthDate::new(2024, 2));
        b.insert(
            DomainId(1),
            ResolvedAddrs {
                v4: vec![0x0808_0808],
                v6: vec![0x2001 << 112],
            },
        );
        SnapshotDelta::diff(&a, &b)
    }

    #[test]
    fn ingest_round_trips_and_rejects_malformed_hex() {
        let request = Request::Ingest(sample_delta());
        assert_eq!(request.verb(), "ingest");
        assert_eq!(req(&request.to_string()), request);

        // Odd length, non-hex digits, and checksummed-but-garbage bytes
        // all map to bad-arg, with long inputs abbreviated.
        for bad in [
            "ingest abc",
            "ingest zz",
            &format!("ingest {}", "ab".repeat(100)),
        ] {
            match err(bad) {
                ProtocolError::BadArg { what, input, .. } => {
                    assert_eq!(what, "delta");
                    assert!(input.len() < 60, "{input:?} should be abbreviated");
                }
                other => panic!("expected bad-arg for {bad:?}, got {other:?}"),
            }
        }
        assert!(matches!(err("ingest"), ProtocolError::Usage { .. }));
        assert!(matches!(err("ingest ab cd"), ProtocolError::Usage { .. }));
    }

    #[test]
    fn hex_armor_round_trips() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            (0..=255u8).collect(),
        ] {
            assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
        // Either case decodes.
        assert_eq!(from_hex("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("gg"), None);
    }

    #[test]
    fn sub_round_trips_and_rejects_malformed_cursors() {
        for from_epoch in [0u64, 1, u64::MAX] {
            let request = Request::Subscribe { from_epoch };
            assert_eq!(request.verb(), "sub");
            assert_eq!(req(&request.to_string()), request);
        }
        assert!(matches!(err("sub"), ProtocolError::Usage { .. }));
        assert!(matches!(err("sub 1 2"), ProtocolError::Usage { .. }));
        assert!(matches!(
            err("sub minus-one"),
            ProtocolError::BadArg { what: "epoch", .. }
        ));
        assert!(matches!(
            err("sub -1"),
            ProtocolError::BadArg { what: "epoch", .. }
        ));
    }

    #[test]
    fn no_feed_has_a_stable_code() {
        let no_feed = ProtocolError::NoFeed;
        assert_eq!(no_feed.code(), "no-feed");
        assert!(!no_feed.is_retryable());
        assert!(no_feed.to_string().contains("primary"));
    }

    #[test]
    fn read_only_and_ingest_failed_have_stable_codes() {
        let read_only = ProtocolError::ReadOnly;
        assert_eq!(read_only.code(), "read-only");
        assert!(!read_only.is_retryable());
        assert!(read_only.to_string().contains("--ingest"));

        let failed = ProtocolError::IngestFailed {
            detail: "delta base 2024-03 does not extend window tail 2024-02".into(),
        };
        assert_eq!(failed.code(), "ingest-failed");
        assert!(!failed.is_retryable());
        assert!(failed.to_string().contains("rolled back"));
        assert!(failed.to_string().contains("2024-03"));
    }

    #[test]
    fn encode_parse_round_trips() {
        let requests = [
            Request::Ping,
            Request::Months,
            Request::Stats { month: None },
            Request::Stats {
                month: Some(MonthDate::new(2024, 12)),
            },
            Request::Point {
                v4: "192.0.2.0/24".parse().unwrap(),
                v6: "2001:db8::/32".parse().unwrap(),
                month: MonthDate::new(2023, 7),
            },
            Request::Partners {
                prefix: AnyPrefix::V4("198.51.100.0/24".parse().unwrap()),
                month: MonthDate::new(2024, 2),
                k: 0,
            },
            Request::Partners {
                prefix: AnyPrefix::V6("2600:1::/48".parse().unwrap()),
                month: MonthDate::new(2024, 2),
                k: 17,
            },
            Request::History {
                v4: "10.0.0.0/24".parse().unwrap(),
                v6: "2600:1::/48".parse().unwrap(),
                from: MonthDate::new(2022, 1),
                to: MonthDate::new(2024, 12),
            },
        ];
        for request in requests {
            assert_eq!(req(&request.to_string()), request);
        }
    }

    #[test]
    fn malformed_inputs_map_to_typed_errors() {
        assert_eq!(err(""), ProtocolError::Empty);
        assert_eq!(err("   "), ProtocolError::Empty);
        assert_eq!(
            err("frobnicate"),
            ProtocolError::UnknownVerb("frobnicate".into())
        );
        // Truncated lines: right verb, wrong arity.
        for truncated in [
            "siblings",
            "siblings 10.0.0.0/24",
            "siblings 10.0.0.0/24 2600:1::/48",
            "partners 10.0.0.0/24 2024-01",
            "pair 10.0.0.0/24 2600:1::/48",
        ] {
            assert!(
                matches!(err(truncated), ProtocolError::Usage { .. }),
                "{truncated:?}"
            );
        }
        // Bad dates and prefixes.
        assert!(matches!(
            err("siblings 10.0.0.0/24 2600:1::/48 2024-13"),
            ProtocolError::BadArg { what: "month", .. }
        ));
        assert!(matches!(
            err("siblings 10.0.0.0/33 2600:1::/48 2024-01"),
            ProtocolError::BadArg {
                what: "v4 prefix",
                ..
            }
        ));
        assert!(matches!(
            err("siblings 10.0.0.0/24 not-a-prefix 2024-01"),
            ProtocolError::BadArg {
                what: "v6 prefix",
                ..
            }
        ));
        assert!(matches!(
            err("partners nonsense 2024-01 3"),
            ProtocolError::BadArg { what: "prefix", .. }
        ));
        assert!(matches!(
            err("partners 10.0.0.0/24 2024-01 -3"),
            ProtocolError::BadArg { what: "k", .. }
        ));
        assert!(matches!(
            err("pair 10.0.0.0/24 2600:1::/48 2024-01"),
            ProtocolError::BadArg {
                what: "month range",
                ..
            }
        ));
        assert!(matches!(
            err("pair 10.0.0.0/24 2600:1::/48 2024-06..2024-01"),
            ProtocolError::BadArg {
                what: "month range",
                ..
            }
        ));
    }

    #[test]
    fn error_messages_name_the_valid_values() {
        let msg = err("frobnicate").to_string();
        for verb in [
            "ping", "months", "stats", "siblings", "partners", "pair", "epoch", "health", "ingest",
            "sub",
        ] {
            assert!(msg.contains(verb), "{msg:?} should name {verb}");
        }
        let msg = err("siblings x y z").to_string();
        assert!(msg.contains("v4 prefix"));
    }

    #[test]
    fn busy_and_timeout_errors_round_trip_the_wire_format() {
        let busy = ProtocolError::Busy {
            what: "connection",
            active: 4,
            max: 4,
        };
        assert_eq!(busy.code(), "busy");
        assert!(busy.is_retryable());
        let rendered = busy.to_string();
        assert!(rendered.contains("4/4"), "{rendered}");
        assert!(rendered.contains("retry"), "{rendered}");

        let timeout = ProtocolError::Timeout {
            what: "request",
            budget_ms: 2000,
        };
        assert_eq!(timeout.code(), "timeout");
        assert!(!timeout.is_retryable());
        assert!(timeout.to_string().contains("2000 ms"));

        // The `err <code> <message>` line decodes back to code+message.
        for e in [busy, timeout] {
            let line = format!("err {} {}\n", e.code(), e);
            match Response::decode_header(&line).unwrap() {
                Err(Response::Err { code, message }) => {
                    assert_eq!(code, e.code());
                    assert_eq!(message, e.to_string());
                }
                other => panic!("expected decoded error, got {other:?}"),
            }
        }
        // No other error shares the shed/deadline codes.
        for e in [ProtocolError::Empty, ProtocolError::UnknownVerb("x".into())] {
            assert!(!e.is_retryable());
            assert_ne!(e.code(), "busy");
            assert_ne!(e.code(), "timeout");
        }
    }

    #[test]
    fn response_header_decoding() {
        assert_eq!(Response::decode_header("ok 3\n").unwrap(), Ok(3));
        assert_eq!(Response::decode_header("ok 0").unwrap(), Ok(0));
        assert_eq!(
            Response::decode_header("err bad-arg bad month \"x\"").unwrap(),
            Err(Response::Err {
                code: "bad-arg".into(),
                message: "bad month \"x\"".into()
            })
        );
        assert!(Response::decode_header("what 3").is_err());
        assert!(Response::decode_header("ok three").is_err());
    }
}
