//! Replication: a primary daemon ships journal deltas to followers.
//!
//! The primary side is [`DeltaFeed`] — a bounded in-memory tail of the
//! ingest journal, keyed by the durable epoch each delta published. The
//! `sub FROM-EPOCH` verb answers from it: a batch of `EPOCH HEX` lines
//! in the journal's own payload encoding ([`sibling_dns::encode_delta`],
//! hex-armored exactly like `ingest`), preceded by a `feed FLOOR
//! CURRENT` header line so a follower always learns the primary's
//! current epoch and the oldest epoch the feed can still serve.
//!
//! The follower side is [`follow`]: a dedicated thread that owns the
//! follower's [`LiveWindow`] and polls the primary's feed, applying
//! each delta through the exact ingest path a primary uses — its own
//! crash-safe journal first, then [`sibling_core::EpochState`], then
//! one published swap. Readers of the follower pin epochs the same way
//! they would on the primary; `ingest` sent to a follower answers the
//! usual `read-only` error because its server simply has no writer.
//!
//! # Cursor and idempotence
//!
//! Feed epochs are *durable*: a primary publishes delta `seq` (its
//! journal sequence number, which survives restarts and compactions) as
//! epoch `1 + seq`, so a follower's cursor never aliases across a
//! primary crash. A follower starts its cursor at `0` and lets the skip
//! rules in [`LiveWindow::ingest_feed`] discard every delta its
//! bootstrapped window already carries — re-sent batches after a
//! reconnect are harmless, and each delta lands in the follower's own
//! journal exactly once.
//!
//! A follower whose cursor falls below the feed's floor (the primary
//! compacted and restarted past its retention) fast-forwards to the
//! floor only when nothing in between is still being served; a true gap
//! — retained deltas that do not extend the follower's window — fails
//! validation in the apply path, so the follower keeps serving its
//! pinned epoch and reports lag rather than corrupting its window.
//!
//! # Failpoints
//!
//! Three sites fault the replication path under `--features failpoints`:
//! `replication::send` (the primary tears the connection instead of
//! answering `sub`), `replication::recv` (the follower tears it before
//! reading a batch) and `replication::apply` (the follower fails before
//! applying a received delta). All three leave both windows consistent:
//! the follower reconnects and re-polls from its cursor.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sibling_bgp::RibSource;
use sibling_core::EpochState;
use sibling_dns::SnapshotDelta;

use crate::client::{Client, RetryPolicy};
use crate::ingest::LiveWindow;
use crate::protocol::{from_hex, to_hex, Request, Response};

/// How many delta lines one `sub` answer carries at most — a lagging
/// follower drains in batches instead of one unbounded response.
pub const SUB_BATCH: usize = 256;

/// Largest backoff exponent a follower's dial loop feeds its
/// [`RetryPolicy`] — the delay saturates at the policy cap anyway.
const MAX_BACKOFF_EXP: u32 = 16;

/// One collected `sub` answer: the feed's bounds and the retained
/// deltas after the requested cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedBatch {
    /// No epoch at or below this is retained (the follower's bootstrap
    /// must cover them). Equals `current` when the feed is empty.
    pub floor: u64,
    /// The primary's current epoch — what a fully caught-up follower's
    /// cursor reads.
    pub current: u64,
    /// `(epoch, hex payload)` pairs, ascending, capped at [`SUB_BATCH`].
    pub deltas: Vec<(u64, String)>,
}

struct FeedState {
    /// `(epoch, hex payload)`, ascending epochs.
    entries: VecDeque<(u64, String)>,
    /// The primary's current epoch (max epoch ever published or seeded).
    current: u64,
}

/// The primary's bounded in-memory journal tail, answering `sub`.
///
/// Entries are hex-armored once at publish time — the exact bytes
/// [`sibling_dns::encode_delta`] wrote to the journal — so the feed and
/// the journal cannot drift. Retention is bounded: a follower lagging
/// by more than [`DeltaFeed::retain`] entries must re-bootstrap from
/// the snapshot store.
pub struct DeltaFeed {
    state: Mutex<FeedState>,
    retain: usize,
}

impl std::fmt::Debug for DeltaFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("feed poisoned");
        f.debug_struct("DeltaFeed")
            .field("entries", &state.entries.len())
            .field("current", &state.current)
            .field("retain", &self.retain)
            .finish()
    }
}

impl Default for DeltaFeed {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaFeed {
    /// How many deltas [`DeltaFeed::new`] retains.
    pub const DEFAULT_RETAIN: usize = 4096;

    /// A feed retaining [`DeltaFeed::DEFAULT_RETAIN`] deltas.
    pub fn new() -> Self {
        Self::with_retain(Self::DEFAULT_RETAIN)
    }

    /// A feed retaining at most `retain` deltas (`0` is treated as 1).
    pub fn with_retain(retain: usize) -> Self {
        Self {
            state: Mutex::new(FeedState {
                entries: VecDeque::new(),
                current: 0,
            }),
            retain: retain.max(1),
        }
    }

    /// Publishes one delta under the epoch it installed. Called by the
    /// ingest path after the published swap, and by recovery for every
    /// journal record it reopened (with the record's durable epoch).
    pub fn publish(&self, epoch: u64, delta: &SnapshotDelta) {
        let hex = to_hex(&sibling_dns::encode_delta(delta));
        let mut state = self.state.lock().expect("feed poisoned");
        state.entries.push_back((epoch, hex));
        while state.entries.len() > self.retain {
            state.entries.pop_front();
        }
        state.current = state.current.max(epoch);
    }

    /// Raises the feed's current epoch without publishing a delta — how
    /// recovery records the daemon's starting epoch so an empty feed
    /// still tells followers where "caught up" is.
    pub fn seed_epoch(&self, epoch: u64) {
        let mut state = self.state.lock().expect("feed poisoned");
        state.current = state.current.max(epoch);
    }

    /// The retained deltas with epochs after `from_epoch` (at most
    /// [`SUB_BATCH`] of them) plus the feed's bounds — the payload of
    /// one `sub` answer.
    pub fn collect_since(&self, from_epoch: u64) -> FeedBatch {
        let state = self.state.lock().expect("feed poisoned");
        let floor = match state.entries.front() {
            Some((first, _)) => first - 1,
            None => state.current,
        };
        let deltas = state
            .entries
            .iter()
            .filter(|(epoch, _)| *epoch > from_epoch)
            .take(SUB_BATCH)
            .cloned()
            .collect();
        FeedBatch {
            floor,
            current: state.current,
            deltas,
        }
    }
}

/// Replication-aware serving gauges the `health` verb reports: the
/// daemon's role, its journal durability backlog, and (on followers)
/// how far behind the primary it is. Shared between the serving planner
/// and whichever component advances the state — the [`LiveWindow`] for
/// journal gauges, the [`follow`] thread for epochs.
#[derive(Debug)]
pub struct HealthGauges {
    role: &'static str,
    journal_bytes: AtomicU64,
    journal_records: AtomicU64,
    /// The primary epoch a follower last observed over the feed.
    source_epoch: AtomicU64,
    /// The follower's feed cursor: the last primary epoch it applied
    /// (or fast-forwarded past as already carried).
    applied_epoch: AtomicU64,
    /// Whether the follower currently holds a live feed connection.
    connected: AtomicBool,
}

impl HealthGauges {
    fn new(role: &'static str) -> Arc<Self> {
        Arc::new(Self {
            role,
            journal_bytes: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            source_epoch: AtomicU64::new(0),
            applied_epoch: AtomicU64::new(0),
            connected: AtomicBool::new(false),
        })
    }

    /// Gauges for a primary (`serve --ingest`): it publishes the feed,
    /// so its epoch lag is zero by definition.
    pub fn primary() -> Arc<Self> {
        Self::new("primary")
    }

    /// Gauges for a follower (`serve --follow`).
    pub fn follower() -> Arc<Self> {
        Self::new("follower")
    }

    /// The replication role: `"primary"` or `"follower"` (daemons
    /// without gauges report `"static"`).
    pub fn role(&self) -> &'static str {
        self.role
    }

    /// Records the journal's durability backlog (bytes and records
    /// awaiting compaction).
    pub fn set_journal(&self, bytes: u64, records: u64) {
        self.journal_bytes.store(bytes, Ordering::Relaxed);
        self.journal_records.store(records, Ordering::Relaxed);
    }

    /// Journal bytes awaiting compaction.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes.load(Ordering::Relaxed)
    }

    /// Journal records awaiting compaction.
    pub fn journal_records(&self) -> u64 {
        self.journal_records.load(Ordering::Relaxed)
    }

    /// Records the primary epoch observed over the feed.
    pub fn observe_source(&self, epoch: u64) {
        self.source_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records the follower's advanced cursor.
    pub fn observe_applied(&self, epoch: u64) {
        self.applied_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// How many primary epochs the follower still has to apply: the
    /// last observed primary epoch minus the cursor. Zero on primaries
    /// (they are the source) and on followers that are caught up — or
    /// that have never reached their primary (nothing observed yet).
    pub fn epoch_lag(&self) -> u64 {
        self.source_epoch
            .load(Ordering::Relaxed)
            .saturating_sub(self.applied_epoch.load(Ordering::Relaxed))
    }

    /// Whether the follower holds a live feed connection right now.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::Relaxed);
    }
}

/// Knobs for a [`follow`] thread.
#[derive(Debug, Clone)]
pub struct FollowerOptions {
    /// How long a caught-up follower waits before polling again.
    pub poll_interval: Duration,
    /// Backoff schedule for redialing a dead primary. The attempt
    /// budget is ignored — a follower redials forever (serving its
    /// pinned window meanwhile); only the delay curve is used.
    pub retry: RetryPolicy,
    /// Read/write timeout on the feed connection, so a hung primary
    /// degrades into a reconnect instead of wedging the thread.
    pub io_timeout: Duration,
}

impl Default for FollowerOptions {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(50),
            retry: RetryPolicy::default(),
            io_timeout: Duration::from_secs(2),
        }
    }
}

/// A running [`follow`] thread. Dropping it (or calling
/// [`FollowerHandle::stop`]) signals the thread and joins it; the
/// `LiveWindow` it owns is dropped with it, its journal already
/// durable.
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FollowerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerHandle")
            .field("stopped", &self.stop.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl FollowerHandle {
    /// Stops the replication thread and joins it. Reads served off the
    /// follower's published window are unaffected — they keep answering
    /// the last applied epoch.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the replication thread: `live` (the follower's bootstrapped
/// window, with its own journal) is moved in and advanced by polling
/// `endpoint`'s feed forever — across primary crashes, restarts and
/// shed connections. Hand `live.published()` to the serving planner
/// *before* calling this; readers then follow every applied epoch.
pub fn follow<R>(
    live: LiveWindow<R>,
    endpoint: &str,
    gauges: Arc<HealthGauges>,
    options: FollowerOptions,
) -> std::io::Result<FollowerHandle>
where
    R: RibSource + Clone + Send + 'static,
    EpochState<R>: Send,
{
    let stop = Arc::new(AtomicBool::new(false));
    let endpoint = endpoint.to_string();
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("sibling-follow".into())
            .spawn(move || follower_loop(live, &endpoint, &gauges, &options, &stop))?
    };
    Ok(FollowerHandle {
        stop,
        thread: Some(thread),
    })
}

/// Sleeps `total` in small slices, returning early once `stop` is set.
fn sleep_observing(stop: &AtomicBool, total: Duration) {
    const SLICE: Duration = Duration::from_millis(10);
    let deadline = std::time::Instant::now() + total;
    while !stop.load(Ordering::Acquire) {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(SLICE));
    }
}

/// The replication thread body: dial, poll, apply, reconnect, forever.
fn follower_loop<R>(
    mut live: LiveWindow<R>,
    endpoint: &str,
    gauges: &HealthGauges,
    options: &FollowerOptions,
    stop: &AtomicBool,
) where
    R: RibSource + Clone + Send,
    EpochState<R>: Send,
{
    // The feed cursor: the last primary epoch applied. Starting at 0
    // re-requests everything retained; the apply path skips what the
    // bootstrap already carries, so a resync is idempotent.
    let mut cursor = 0u64;
    let mut dial_failures = 0u32;
    while !stop.load(Ordering::Acquire) {
        let mut client = match Client::connect(endpoint) {
            Ok(client) => client,
            Err(_) => {
                gauges.set_connected(false);
                sleep_observing(
                    stop,
                    options.retry.delay(dial_failures.min(MAX_BACKOFF_EXP)),
                );
                dial_failures = dial_failures.saturating_add(1);
                continue;
            }
        };
        if client.set_io_timeout(Some(options.io_timeout)).is_err() {
            continue;
        }
        dial_failures = 0;
        gauges.set_connected(true);
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            // Failpoint: the feed connection tears on the receiving
            // side before a batch is read.
            if sibling_failpoint::io_point("replication::recv").is_err() {
                break;
            }
            let request = Request::Subscribe { from_epoch: cursor }.to_string();
            let lines = match client.roundtrip(&request) {
                Ok(Response::Ok(lines)) => lines,
                Ok(Response::Err { .. }) => {
                    // busy/timeout: shed under load. no-feed: the
                    // endpoint is not (yet) serving a feed — a primary
                    // still recovering, or a misconfiguration. Either
                    // way the request itself is fine: back off, re-ask.
                    sleep_observing(stop, options.poll_interval);
                    continue;
                }
                Err(_) => break,
            };
            match apply_batch(&mut live, gauges, cursor, &lines) {
                Ok(next) => {
                    if next == cursor {
                        // Caught up (or an empty poll): wait it out.
                        sleep_observing(stop, options.poll_interval);
                    }
                    cursor = next;
                }
                // A malformed batch or a failed apply: drop the
                // connection and resync from the cursor. The window
                // stays on its last published epoch throughout.
                Err(_) => break,
            }
        }
        gauges.set_connected(false);
    }
}

/// Applies one `sub` answer, returning the advanced cursor.
fn apply_batch<R>(
    live: &mut LiveWindow<R>,
    gauges: &HealthGauges,
    cursor: u64,
    lines: &[String],
) -> Result<u64, String>
where
    R: RibSource + Clone + Send,
    EpochState<R>: Send,
{
    let header = lines.first().ok_or("empty sub response")?;
    let (floor, current) = parse_feed_header(header)?;
    gauges.observe_source(current);
    let mut cursor = cursor;
    for line in &lines[1..] {
        let (epoch, delta) = parse_feed_line(line)?;
        if epoch <= cursor {
            continue;
        }
        // Failpoint: the follower fails between receiving a delta and
        // applying it — the batch is abandoned and re-requested.
        sibling_failpoint::io_point("replication::apply").map_err(|e| e.to_string())?;
        live.ingest_feed(&delta)?;
        cursor = epoch;
        gauges.observe_applied(cursor);
    }
    if cursor < floor {
        // Everything at or below the floor left the feed's retention;
        // the bootstrapped window must already carry it (same store).
        cursor = floor;
        gauges.observe_applied(cursor);
    }
    Ok(cursor)
}

/// Parses the `feed FLOOR CURRENT` header line of a `sub` answer.
fn parse_feed_header(line: &str) -> Result<(u64, u64), String> {
    let malformed = || format!("malformed feed header {line:?}");
    let mut words = line.split_whitespace();
    if words.next() != Some("feed") {
        return Err(malformed());
    }
    let floor = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    let current = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    if words.next().is_some() {
        return Err(malformed());
    }
    Ok((floor, current))
}

/// Parses one `EPOCH HEX` feed data line into the delta it carries.
fn parse_feed_line(line: &str) -> Result<(u64, SnapshotDelta), String> {
    let (epoch, hex) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed feed line {line:?}"))?;
    let epoch = epoch
        .parse()
        .map_err(|_| format!("malformed feed epoch {epoch:?}"))?;
    let bytes = from_hex(hex).ok_or_else(|| format!("feed delta is not hex ({epoch})"))?;
    let delta = sibling_dns::decode_delta(&bytes)
        .map_err(|e| format!("feed delta {epoch} undecodable: {e}"))?;
    Ok((epoch, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_dns::DnsSnapshot;
    use sibling_net_types::MonthDate;

    fn delta(from: u8, to: u8) -> SnapshotDelta {
        SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, from)),
            &DnsSnapshot::new(MonthDate::new(2024, to)),
        )
    }

    #[test]
    fn feed_retains_orders_and_bounds() {
        let feed = DeltaFeed::with_retain(3);
        let empty = feed.collect_since(0);
        assert_eq!((empty.floor, empty.current), (0, 0));
        assert!(empty.deltas.is_empty());

        feed.seed_epoch(5);
        let seeded = feed.collect_since(0);
        assert_eq!((seeded.floor, seeded.current), (5, 5));
        assert!(seeded.deltas.is_empty());

        for (epoch, months) in [(6u64, (1, 2)), (7, (2, 3)), (8, (3, 4))] {
            feed.publish(epoch, &delta(months.0, months.1));
        }
        let all = feed.collect_since(0);
        assert_eq!((all.floor, all.current), (5, 8));
        assert_eq!(
            all.deltas.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
        // The payload is the journal encoding, hex-armored.
        assert_eq!(
            all.deltas[0].1,
            to_hex(&sibling_dns::encode_delta(&delta(1, 2)))
        );

        // A cursor mid-feed gets only what follows it.
        let tail = feed.collect_since(7);
        assert_eq!(
            tail.deltas.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![8]
        );
        let caught_up = feed.collect_since(8);
        assert!(caught_up.deltas.is_empty());
        assert_eq!(caught_up.current, 8);

        // Publishing past the retention cap evicts the oldest and
        // raises the floor.
        feed.publish(9, &delta(4, 5));
        let evicted = feed.collect_since(0);
        assert_eq!((evicted.floor, evicted.current), (6, 9));
        assert_eq!(
            evicted.deltas.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn feed_header_and_line_round_trip() {
        assert_eq!(parse_feed_header("feed 3 17").unwrap(), (3, 17));
        for bad in ["", "feed", "feed 1", "feed 1 2 3", "fed 1 2", "feed x 2"] {
            assert!(parse_feed_header(bad).is_err(), "{bad:?}");
        }

        let d = delta(1, 2);
        let line = format!("42 {}", to_hex(&sibling_dns::encode_delta(&d)));
        let (epoch, decoded) = parse_feed_line(&line).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(decoded, d);
        for bad in ["", "42", "x abcd", "42 zz", "42 abc"] {
            assert!(parse_feed_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn gauges_report_role_journal_and_lag() {
        let primary = HealthGauges::primary();
        assert_eq!(primary.role(), "primary");
        assert_eq!(primary.epoch_lag(), 0);
        primary.set_journal(1024, 3);
        assert_eq!(
            (primary.journal_bytes(), primary.journal_records()),
            (1024, 3)
        );

        let follower = HealthGauges::follower();
        assert_eq!(follower.role(), "follower");
        // Never reached a primary: nothing observed, lag reads zero.
        assert_eq!(follower.epoch_lag(), 0);
        follower.observe_source(7);
        assert_eq!(follower.epoch_lag(), 7);
        follower.observe_applied(5);
        assert_eq!(follower.epoch_lag(), 2);
        follower.observe_applied(7);
        assert_eq!(follower.epoch_lag(), 0);
        // Observations are monotonic — a stale reading never regresses
        // either gauge.
        follower.observe_source(3);
        follower.observe_applied(2);
        assert_eq!(follower.epoch_lag(), 0);
        assert!(!follower.connected());
        follower.set_connected(true);
        assert!(follower.connected());
    }
}
