//! The query planner: executes parsed requests against a published
//! [`WindowQueryIndex`] and renders wire responses.
//!
//! This is the whole read hot path — the server's connection loop and the
//! `query_throughput` bench both call [`QueryPlanner::answer_line`] with a
//! reused output buffer, so a query costs a parse, a binary search or two
//! and number formatting: no locks, and no allocation once the buffer has
//! warmed up.

use std::fmt::Write as _;
use std::sync::Arc;

use sibling_core::query::{MonthStats, MonthView, WindowQueryIndex};
use sibling_core::{PublishedWindow, SiblingPair};
use sibling_net_types::MonthDate;

use crate::protocol::{parse_request, ProtocolError, Request};
use crate::replicate::{DeltaFeed, HealthGauges};
use crate::server::ServeStats;

/// Executes requests against the published window. Cloning is an `Arc`
/// bump — each reader thread owns a clone and shares the window
/// lock-free apart from the one epoch-pin read per request.
#[derive(Debug, Clone)]
pub struct QueryPlanner {
    window: Arc<PublishedWindow>,
    /// The serving counters the `health` verb reports — attached by the
    /// server when it starts; `None` (all-zero health counters) when the
    /// planner is used standalone.
    stats: Option<Arc<ServeStats>>,
    /// The replication feed `sub` answers from — attached on primaries;
    /// everywhere else `sub` answers the typed `no-feed` error.
    feed: Option<Arc<DeltaFeed>>,
    /// Replication gauges for `health`'s role/epoch-lag/journal lines —
    /// `None` reports the static-daemon defaults.
    gauges: Option<Arc<HealthGauges>>,
}

/// Renders one sibling pair as a response data line (sans newline):
/// `V4 V6 NUM/DEN SHARED V4DOMS V6DOMS`, similarity as the exact
/// rational so the answer round-trips bit-identically.
fn write_pair(out: &mut String, pair: &SiblingPair) {
    let _ = write!(
        out,
        "{} {} {}/{} {} {} {}",
        pair.v4,
        pair.v6,
        pair.similarity.num(),
        pair.similarity.den(),
        pair.shared_domains,
        pair.v4_domains,
        pair.v6_domains
    );
}

impl QueryPlanner {
    /// A planner over a static index: wraps it as epoch 1 of a window
    /// that is never swapped. The common read-only serving path.
    pub fn new(index: Arc<WindowQueryIndex>) -> Self {
        Self::live(Arc::new(PublishedWindow::new(index)))
    }

    /// A planner over a live window whose index a writer republishes
    /// with [`PublishedWindow::swap`].
    pub fn live(window: Arc<PublishedWindow>) -> Self {
        Self {
            window,
            stats: None,
            feed: None,
            gauges: None,
        }
    }

    /// The currently published index (an epoch-pinned `Arc` clone).
    pub fn index(&self) -> Arc<WindowQueryIndex> {
        Arc::clone(self.window.pin().index())
    }

    /// The published window this planner reads.
    pub fn window(&self) -> &Arc<PublishedWindow> {
        &self.window
    }

    /// Attaches the serving counters the `health` verb reports. The
    /// server calls this when it starts; detached planners answer
    /// `health` with zero counters.
    pub fn attach_stats(&mut self, stats: Arc<ServeStats>) {
        self.stats = Some(stats);
    }

    /// Attaches the replication feed `sub` answers from — done on
    /// primaries before the server starts. Planners without a feed
    /// answer `sub` with the typed `no-feed` error.
    pub fn attach_feed(&mut self, feed: Arc<DeltaFeed>) {
        self.feed = Some(feed);
    }

    /// Attaches the replication gauges behind `health`'s `role`,
    /// `epoch-lag`, `journal-bytes` and `journal-records` lines.
    /// Planners without gauges report `role static` and zeros.
    pub fn attach_gauges(&mut self, gauges: Arc<HealthGauges>) {
        self.gauges = Some(gauges);
    }

    /// Answers one raw request line, replacing `out` with the complete
    /// wire response (header + data lines, every line `\n`-terminated).
    /// Errors become `err` responses; this never fails.
    pub fn answer_line(&self, line: &str, out: &mut String) {
        self.answer_line_under_pressure(line, out, None);
    }

    /// [`QueryPlanner::answer_line`], but when `pressure` is
    /// `Some((active, max))` — the server is at its connection cap — the
    /// expensive verbs ([`Request::Partners`], [`Request::History`]) are
    /// shed with a typed `busy` error before any index work, keeping the
    /// cheap point lookups and liveness checks answering.
    pub fn answer_line_under_pressure(
        &self,
        line: &str,
        out: &mut String,
        pressure: Option<(usize, usize)>,
    ) {
        out.clear();
        let outcome = parse_request(line).and_then(|request| {
            if let Some((active, max)) = pressure {
                if Self::sheds_under_pressure(&request) {
                    return Err(ProtocolError::Busy {
                        what: request.verb(),
                        active,
                        max,
                    });
                }
            }
            self.answer(&request, out)
        });
        if let Err(error) = outcome {
            out.clear();
            let _ = writeln!(out, "err {} {}", error.code(), error);
        }
    }

    /// Which requests are shed first under pressure: the ranked top-k
    /// scan and the multi-month history walk. Point lookups, liveness
    /// and the small metadata verbs always answer.
    pub fn sheds_under_pressure(request: &Request) -> bool {
        matches!(request, Request::Partners { .. } | Request::History { .. })
    }

    /// Resolves a month to its view, mapping absence to the typed
    /// out-of-window error (naming the loaded range).
    fn view<'a>(
        index: &'a WindowQueryIndex,
        month: MonthDate,
    ) -> Result<MonthView<'a>, ProtocolError> {
        index.month(month).ok_or_else(|| {
            let (first, last) = index.bounds();
            ProtocolError::OutOfWindow { month, first, last }
        })
    }

    /// Executes a parsed request, appending the response to `out`. The
    /// request pins the published epoch once up front, so every line of
    /// a multi-line answer describes the same generation even while a
    /// writer publishes new ones.
    pub fn answer(&self, request: &Request, out: &mut String) -> Result<(), ProtocolError> {
        let pin = self.window.pin();
        let index = pin.index().as_ref();
        match request {
            Request::Ping => out.push_str("ok 1\npong\n"),
            Request::Months => {
                let months = index.months();
                let _ = writeln!(out, "ok {}", months.len());
                for month in months {
                    let _ = writeln!(out, "{month}");
                }
            }
            Request::Stats { month: None } => {
                let _ = writeln!(out, "ok {}", index.months().len());
                for stats in index.stats() {
                    out.push_str(&stats.batch_row());
                    out.push('\n');
                }
            }
            Request::Stats { month: Some(month) } => {
                let view = Self::view(index, *month)?;
                out.push_str("ok 1\n");
                out.push_str(&view.stats().batch_row());
                out.push('\n');
            }
            Request::Point { v4, v6, month } => {
                let view = Self::view(index, *month)?;
                match view.point(v4, v6) {
                    Some(pair) => {
                        out.push_str("ok 1\n");
                        write_pair(out, pair);
                        out.push('\n');
                    }
                    // Absence is an answer, not an error.
                    None => out.push_str("ok 0\n"),
                }
            }
            Request::Partners { prefix, month, k } => {
                let view = Self::view(index, *month)?;
                let _ = writeln!(out, "ok {}", view.partners(prefix, *k).count());
                for pair in view.partners(prefix, *k) {
                    write_pair(out, pair);
                    out.push('\n');
                }
            }
            Request::History { v4, v6, from, to } => {
                let count = index.history(v4, v6, *from, *to).count();
                let _ = writeln!(out, "ok {count}");
                for (month, pair) in index.history(v4, v6, *from, *to) {
                    let _ = write!(out, "{month} ");
                    write_pair(out, pair);
                    out.push('\n');
                }
            }
            Request::Epoch => {
                let _ = write!(out, "ok 1\n{}\n", pin.epoch());
            }
            Request::Health => {
                let stats = self
                    .stats
                    .as_deref()
                    .map(ServeStats::snapshot)
                    .unwrap_or_default();
                let lag = stats
                    .ingests
                    .saturating_sub(stats.ingest_failures + stats.epochs);
                let gauges = self.gauges.as_deref();
                out.push_str("ok 15\n");
                let _ = writeln!(out, "months {}", index.months().len());
                let _ = writeln!(out, "epoch {}", pin.epoch());
                let _ = writeln!(out, "role {}", gauges.map_or("static", HealthGauges::role));
                let _ = writeln!(
                    out,
                    "epoch-lag {}",
                    gauges.map_or(0, HealthGauges::epoch_lag)
                );
                let _ = writeln!(
                    out,
                    "journal-bytes {}",
                    gauges.map_or(0, HealthGauges::journal_bytes)
                );
                let _ = writeln!(
                    out,
                    "journal-records {}",
                    gauges.map_or(0, HealthGauges::journal_records)
                );
                let _ = writeln!(out, "ingests {}", stats.ingests);
                let _ = writeln!(out, "ingest-failures {}", stats.ingest_failures);
                let _ = writeln!(out, "epochs-published {}", stats.epochs);
                let _ = writeln!(out, "ingest-lag {lag}");
                let _ = writeln!(out, "served {}", stats.served);
                let _ = writeln!(out, "shed-connections {}", stats.shed_connections);
                let _ = writeln!(out, "shed-requests {}", stats.shed_requests);
                let _ = writeln!(out, "timeouts {}", stats.timeouts);
                let _ = writeln!(out, "panics {}", stats.panics);
            }
            // The socket server routes `ingest` to its writer thread
            // before the planner sees it; reaching this arm means the
            // daemon has no writer.
            Request::Ingest(_) => return Err(ProtocolError::ReadOnly),
            Request::Subscribe { from_epoch } => {
                let feed = self.feed.as_deref().ok_or(ProtocolError::NoFeed)?;
                let batch = feed.collect_since(*from_epoch);
                let _ = writeln!(out, "ok {}", 1 + batch.deltas.len());
                let _ = writeln!(out, "feed {} {}", batch.floor, batch.current);
                for (epoch, hex) in &batch.deltas {
                    let _ = writeln!(out, "{epoch} {hex}");
                }
            }
        }
        Ok(())
    }

    /// The batch-table header matching `stats` data lines — what the CLI
    /// prints above them.
    pub fn stats_header() -> String {
        MonthStats::batch_header()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_core::{Ratio, SiblingSet};

    fn pair(v4: &str, v6: &str, num: u64, den: u64) -> SiblingPair {
        SiblingPair {
            v4: v4.parse().unwrap(),
            v6: v6.parse().unwrap(),
            similarity: Ratio::new(num, den),
            shared_domains: num,
            v4_domains: den,
            v6_domains: den,
        }
    }

    fn planner() -> QueryPlanner {
        let m1 = SiblingSet::from_pairs(vec![
            pair("10.0.0.0/24", "2600:1::/48", 1, 1),
            pair("10.0.0.0/24", "2600:2::/48", 1, 2),
        ]);
        let m2 = SiblingSet::from_pairs(vec![pair("10.0.0.0/24", "2600:1::/48", 1, 2)]);
        let index = WindowQueryIndex::build(&[
            (MonthDate::new(2024, 1), m1),
            (MonthDate::new(2024, 2), m2),
        ])
        .unwrap();
        QueryPlanner::new(Arc::new(index))
    }

    fn answer(line: &str) -> String {
        let planner = planner();
        let mut out = String::new();
        planner.answer_line(line, &mut out);
        out
    }

    #[test]
    fn ping_months_stats() {
        assert_eq!(answer("ping"), "ok 1\npong\n");
        assert_eq!(answer("months"), "ok 2\n2024-01\n2024-02\n");
        let stats = answer("stats");
        assert!(stats.starts_with("ok 2\n2024-01 "));
        let one = answer("stats 2024-02");
        assert!(one.starts_with("ok 1\n2024-02 "));
    }

    #[test]
    fn point_hit_miss_and_out_of_window() {
        assert_eq!(
            answer("siblings 10.0.0.0/24 2600:1::/48 2024-01"),
            "ok 1\n10.0.0.0/24 2600:1::/48 1/1 1 1 1\n"
        );
        assert_eq!(answer("siblings 10.0.0.0/24 2600:9::/48 2024-01"), "ok 0\n");
        let out = answer("siblings 10.0.0.0/24 2600:1::/48 2025-01");
        assert!(out.starts_with("err out-of-window "), "{out:?}");
        assert!(out.contains("2024-01..2024-02"), "{out:?}");
    }

    #[test]
    fn partners_ranked_and_capped() {
        assert_eq!(
            answer("partners 10.0.0.0/24 2024-01 0"),
            "ok 2\n10.0.0.0/24 2600:1::/48 1/1 1 1 1\n10.0.0.0/24 2600:2::/48 1/2 1 2 2\n"
        );
        assert_eq!(
            answer("partners 10.0.0.0/24 2024-01 1"),
            "ok 1\n10.0.0.0/24 2600:1::/48 1/1 1 1 1\n"
        );
        assert_eq!(answer("partners 9.9.9.0/24 2024-01 5"), "ok 0\n");
    }

    #[test]
    fn history_spans_months() {
        assert_eq!(
            answer("pair 10.0.0.0/24 2600:1::/48 2024-01..2024-12"),
            "ok 2\n2024-01 10.0.0.0/24 2600:1::/48 1/1 1 1 1\n\
             2024-02 10.0.0.0/24 2600:1::/48 1/2 1 2 2\n"
        );
        assert_eq!(
            answer("pair 10.0.0.0/24 2600:2::/48 2024-02..2024-02"),
            "ok 0\n"
        );
    }

    #[test]
    fn pressure_sheds_expensive_verbs_but_answers_cheap_ones() {
        let planner = planner();
        let mut out = String::new();
        let pressure = Some((4, 4));
        // Expensive verbs shed with a typed, retryable busy error.
        for line in [
            "partners 10.0.0.0/24 2024-01 0",
            "pair 10.0.0.0/24 2600:1::/48 2024-01..2024-12",
        ] {
            planner.answer_line_under_pressure(line, &mut out, pressure);
            assert!(out.starts_with("err busy "), "{line:?} -> {out:?}");
            assert!(out.contains("4/4"), "{out:?}");
        }
        // Cheap verbs still answer identically to the unpressured path.
        for line in [
            "ping",
            "months",
            "stats 2024-02",
            "siblings 10.0.0.0/24 2600:1::/48 2024-01",
        ] {
            planner.answer_line_under_pressure(line, &mut out, pressure);
            let mut calm = String::new();
            planner.answer_line(line, &mut calm);
            assert_eq!(out, calm, "{line:?}");
            assert!(out.starts_with("ok "), "{line:?} -> {out:?}");
        }
        // Malformed lines keep their own codes even under pressure.
        planner.answer_line_under_pressure("bogus", &mut out, pressure);
        assert!(out.starts_with("err unknown-verb "), "{out:?}");
    }

    #[test]
    fn epoch_and_health_answer_on_static_windows() {
        // A static window is epoch 1 forever.
        assert_eq!(answer("epoch"), "ok 1\n1\n");
        let health = answer("health");
        assert!(
            health.starts_with("ok 15\nmonths 2\nepoch 1\nrole static\n"),
            "{health:?}"
        );
        // Detached planner: all serving counters read zero.
        for line in [
            "epoch-lag 0",
            "journal-bytes 0",
            "journal-records 0",
            "ingests 0",
            "ingest-lag 0",
            "served 0",
            "panics 0",
        ] {
            assert!(health.contains(&format!("\n{line}\n")), "{health:?}");
        }
    }

    #[test]
    fn health_reports_attached_replication_gauges() {
        use crate::replicate::HealthGauges;
        let mut planner = planner();
        let gauges = HealthGauges::follower();
        gauges.set_journal(2048, 7);
        gauges.observe_source(9);
        gauges.observe_applied(6);
        planner.attach_gauges(Arc::clone(&gauges));
        let mut health = String::new();
        planner.answer_line("health", &mut health);
        for line in [
            "role follower",
            "epoch-lag 3",
            "journal-bytes 2048",
            "journal-records 7",
        ] {
            assert!(health.contains(&format!("\n{line}\n")), "{health:?}");
        }
    }

    #[test]
    fn sub_answers_the_feed_or_the_typed_no_feed_error() {
        use crate::replicate::DeltaFeed;
        use sibling_dns::{DnsSnapshot, SnapshotDelta};

        // No feed attached: the typed, non-retryable error.
        let out = answer("sub 0");
        assert!(out.starts_with("err no-feed "), "{out:?}");

        let mut planner = planner();
        let feed = Arc::new(DeltaFeed::new());
        let delta = SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, 2)),
            &DnsSnapshot::new(MonthDate::new(2024, 3)),
        );
        feed.seed_epoch(1);
        feed.publish(2, &delta);
        planner.attach_feed(feed);
        let mut out = String::new();
        planner.answer_line("sub 0", &mut out);
        let hex = crate::protocol::to_hex(&sibling_dns::encode_delta(&delta));
        assert_eq!(out, format!("ok 2\nfeed 1 2\n2 {hex}\n"));
        // A caught-up cursor gets just the bounds header.
        planner.answer_line("sub 2", &mut out);
        assert_eq!(out, "ok 1\nfeed 1 2\n");
    }

    #[test]
    fn ingest_without_a_writer_is_read_only() {
        use sibling_dns::{DnsSnapshot, SnapshotDelta};
        let delta = SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, 2)),
            &DnsSnapshot::new(MonthDate::new(2024, 3)),
        );
        let out = answer(&Request::Ingest(delta).to_string());
        assert!(out.starts_with("err read-only "), "{out:?}");
    }

    #[test]
    fn live_planner_follows_published_swaps() {
        let planner = planner();
        let window = Arc::clone(planner.window());
        let live = QueryPlanner::live(Arc::clone(&window));
        assert_eq!(
            {
                let mut out = String::new();
                live.answer_line("months", &mut out);
                out
            },
            "ok 2\n2024-01\n2024-02\n"
        );
        // A writer publishes a replacement window; the same planner
        // serves it at the next request.
        let m3 = SiblingSet::from_pairs(vec![pair("10.0.0.0/24", "2600:1::/48", 2, 3)]);
        let index = WindowQueryIndex::build(&[(MonthDate::new(2024, 3), m3)]).unwrap();
        assert_eq!(window.swap(Arc::new(index)), 2);
        let mut out = String::new();
        live.answer_line("months", &mut out);
        assert_eq!(out, "ok 1\n2024-03\n");
        live.answer_line("epoch", &mut out);
        assert_eq!(out, "ok 1\n2\n");
    }

    #[test]
    fn malformed_lines_become_err_responses() {
        for (line, code) in [
            ("", "err empty "),
            ("bogus", "err unknown-verb "),
            ("siblings 10.0.0.0/24", "err usage "),
            ("siblings x 2600:1::/48 2024-01", "err bad-arg "),
            ("stats 2024-99", "err bad-arg "),
        ] {
            let out = answer(line);
            assert!(out.starts_with(code), "{line:?} -> {out:?}");
            assert!(out.ends_with('\n'));
            assert_eq!(out.lines().count(), 1);
        }
    }
}
