//! A minimal blocking protocol client — what the `query` subcommand, the
//! e2e tests and the CI smoke step dial the daemon with.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use crate::protocol::Response;
use crate::server::Conn;

/// A connected protocol client. One request/response round-trip at a
/// time ([`Client::roundtrip`]); the connection persists across calls.
pub struct Client {
    reader: BufReader<Conn>,
}

impl Client {
    /// Connects to an endpoint string as the daemon prints it:
    /// `tcp://HOST:PORT` or `unix://PATH` (bare `HOST:PORT` is accepted
    /// as TCP).
    pub fn connect(endpoint: &str) -> io::Result<Client> {
        if let Some(addr) = endpoint.strip_prefix("tcp://") {
            return Self::connect_tcp(addr);
        }
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix://") {
            return Self::connect_unix(Path::new(path));
        }
        Self::connect_tcp(endpoint)
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(Conn::Tcp(stream)),
        })
    }

    /// Connects over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(Conn::Unix(UnixStream::connect(path)?)),
        })
    }

    /// Sends one request line and reads the complete response. The
    /// request may omit the trailing newline. Protocol-level errors come
    /// back as [`Response::Err`]; only transport failures are `io::Error`.
    pub fn roundtrip(&mut self, request: &str) -> io::Result<Response> {
        let conn = self.reader.get_mut();
        conn.write_all(request.as_bytes())?;
        if !request.ends_with('\n') {
            conn.write_all(b"\n")?;
        }
        conn.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ));
        }
        let count = match Response::decode_header(&line)? {
            Ok(count) => count,
            Err(error) => return Ok(error),
        };
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            data.push(line.trim_end_matches('\n').to_string());
        }
        Ok(Response::Ok(data))
    }
}
