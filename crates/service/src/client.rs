//! A minimal blocking protocol client — what the `query` subcommand, the
//! e2e tests and the CI smoke step dial the daemon with.
//!
//! [`RetryPolicy`] adds bounded, jittered exponential backoff on
//! connect failures, transient transport errors and `err busy` shed
//! responses. The jitter is deterministic (seeded), so a retrying run
//! replays identically — the same discipline as the failpoint
//! schedules it is tested against.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

use crate::protocol::Response;
use crate::server::Conn;

/// Bounded jittered exponential backoff: attempt `i` (0-based) sleeps a
/// deterministic amount in `[full/2, full]` where
/// `full = min(base << i, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries (the first attempt plus retries). `1` disables
    /// retrying; `0` is treated as `1`.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub cap: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

/// SplitMix64 — the deterministic jitter source (no RNG dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            attempts: 1,
            ..Self::default()
        }
    }

    /// The backoff before retry `attempt` (0-based): exponential with
    /// full jitter into the upper half, always within
    /// `[min(base·2^attempt, cap) / 2, min(base·2^attempt, cap)]` — and
    /// therefore never above `cap`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let full = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let half = full / 2;
        let jitter_range = full.saturating_sub(half);
        if jitter_range.is_zero() {
            return full;
        }
        let roll = splitmix64(self.seed ^ u64::from(attempt));
        half + Duration::from_nanos(roll % (jitter_range.as_nanos() as u64 + 1))
    }

    /// Whether a transport error is worth retrying: the connection-level
    /// failures a daemon restart or a shed connection produce. Protocol
    /// and data errors are not retryable.
    pub fn transient(error: &io::Error) -> bool {
        matches!(
            error.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::Interrupted
        )
    }
}

/// A connected protocol client. One request/response round-trip at a
/// time ([`Client::roundtrip`]); the connection persists across calls.
pub struct Client {
    reader: BufReader<Conn>,
    /// Where this client dialed — kept for reconnecting retries.
    endpoint: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to an endpoint string as the daemon prints it:
    /// `tcp://HOST:PORT` or `unix://PATH` (bare `HOST:PORT` is accepted
    /// as TCP).
    pub fn connect(endpoint: &str) -> io::Result<Client> {
        if let Some(addr) = endpoint.strip_prefix("tcp://") {
            return Self::connect_tcp(addr);
        }
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix://") {
            return Self::connect_unix(Path::new(path));
        }
        Self::connect_tcp(endpoint)
    }

    /// [`Client::connect`] with bounded retries: each failed dial backs
    /// off per the policy before the next attempt.
    pub fn connect_with(endpoint: &str, policy: &RetryPolicy) -> io::Result<Client> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match Self::connect(endpoint) {
                Ok(client) => return Ok(client),
                Err(e) if RetryPolicy::transient(&e) && attempt + 1 < attempts => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(Conn::Tcp(stream)),
            endpoint: format!("tcp://{addr}"),
        })
    }

    /// Connects over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(Conn::Unix(UnixStream::connect(path)?)),
            endpoint: format!("unix://{}", path.display()),
        })
    }

    /// The endpoint this client dialed.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Sets (or clears) a read/write timeout on the connection, so a
    /// round-trip against a hung peer degrades into a transient
    /// `WouldBlock`/`TimedOut` error instead of blocking forever — what
    /// a follower's feed poll needs to notice a dead primary.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self.reader.get_mut() {
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    /// Sends one request line and reads the complete response. The
    /// request may omit the trailing newline. Protocol-level errors come
    /// back as [`Response::Err`]; only transport failures are `io::Error`.
    pub fn roundtrip(&mut self, request: &str) -> io::Result<Response> {
        let conn = self.reader.get_mut();
        conn.write_all(request.as_bytes())?;
        if !request.ends_with('\n') {
            conn.write_all(b"\n")?;
        }
        conn.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ));
        }
        let count = match Response::decode_header(&line)? {
            Ok(count) => count,
            Err(error) => return Ok(error),
        };
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            data.push(line.trim_end_matches('\n').to_string());
        }
        Ok(Response::Ok(data))
    }

    /// [`Client::roundtrip`] with bounded retries. Retried failures:
    /// transient transport errors and `err busy` shed responses. Every
    /// retry dials a fresh connection — a transient error means the old
    /// one is dead, and a busy shed closes it server-side moments
    /// later, so reusing it would just turn the next attempt into an
    /// EOF. Other protocol errors and hard I/O failures return
    /// immediately.
    pub fn retry_roundtrip(&mut self, request: &str, policy: &RetryPolicy) -> io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut attempt = 0;
        loop {
            let outcome = self.roundtrip(request);
            let retryable = match &outcome {
                Ok(Response::Err { code, .. }) => code == "busy",
                Ok(_) => false,
                Err(e) => RetryPolicy::transient(e),
            };
            if !retryable || attempt + 1 >= attempts {
                return outcome;
            }
            std::thread::sleep(policy.delay(attempt));
            // Dial again with the budget we have left — a transiently
            // failed redial consumes the attempt and keeps the old
            // connection for the next try.
            match Self::connect(&self.endpoint) {
                Ok(fresh) => *self = fresh,
                Err(e) if RetryPolicy::transient(&e) => {}
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }
}

/// A client over several replica endpoints (`--connect a,b,...`): each
/// round-trip rotates to the next endpoint on busy sheds, timeouts and
/// transient transport errors, under one [`RetryPolicy`] backoff
/// budget. The connection to whichever replica last answered is kept
/// for the next round-trip.
///
/// This is what makes a replicated serving tier transparent to
/// clients: with a primary and its followers listed, killing any one
/// daemon turns into a rotation, not a failure — every read verb
/// answers from a replica at its published epoch.
#[derive(Debug)]
pub struct FailoverClient {
    endpoints: Vec<String>,
    policy: RetryPolicy,
    /// Index of the endpoint to (re)dial next — sticky across calls so
    /// a healthy replica keeps serving once found.
    active: usize,
    conn: Option<Client>,
}

impl FailoverClient {
    /// A client over `endpoints` (each as [`Client::connect`] accepts).
    /// Connections are dialed lazily, per round-trip. Errors if the
    /// list is empty.
    pub fn new<I, S>(endpoints: I, policy: RetryPolicy) -> io::Result<FailoverClient>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        if endpoints.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no endpoints to connect to",
            ));
        }
        Ok(FailoverClient {
            endpoints,
            policy,
            active: 0,
            conn: None,
        })
    }

    /// The endpoints this client rotates over.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Drops the current connection and moves to the next endpoint.
    fn rotate(&mut self) {
        self.conn = None;
        self.active = (self.active + 1) % self.endpoints.len();
    }

    /// Sends one request, rotating through the endpoints on busy sheds,
    /// timeouts and transient transport errors. Each backoff attempt in
    /// the policy's budget tries every endpoint once before sleeping;
    /// when the budget runs out, the last outcome — a typed `busy`/
    /// `timeout` response, or the transport error that means every
    /// replica is unreachable — is returned as-is so the caller can
    /// tell "all replicas down" from a rejected request.
    pub fn roundtrip(&mut self, request: &str) -> io::Result<Response> {
        let attempts = self.policy.attempts.max(1);
        let mut last: Option<io::Result<Response>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.delay(attempt - 1));
            }
            for _ in 0..self.endpoints.len() {
                let outcome = self.try_active(request);
                match outcome {
                    Ok(Response::Err { code, message }) if code == "busy" || code == "timeout" => {
                        // Shed here; another replica may have capacity.
                        self.rotate();
                        last = Some(Ok(Response::Err { code, message }));
                    }
                    Ok(response) => return Ok(response),
                    // Transient errors are the failover case; a hard
                    // failure (e.g. a malformed endpoint) still gives
                    // the other replicas their chance before failing.
                    Err(e) => {
                        self.rotate();
                        last = Some(Err(e));
                    }
                }
            }
        }
        last.expect("at least one endpoint was tried")
    }

    /// One round-trip against the active endpoint, dialing if needed.
    fn try_active(&mut self, request: &str) -> io::Result<Response> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(&self.endpoints[self.active])?);
        }
        let client = self.conn.as_mut().expect("just connected");
        let outcome = client.roundtrip(request);
        if outcome.is_err() {
            // Whatever broke, the connection is suspect; redial next time.
            self.conn = None;
        }
        outcome
    }
}
