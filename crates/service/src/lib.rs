//! The resident sibling query service.
//!
//! Batch runs answer one question and die; this crate keeps a scored
//! window alive and answers millions. The shape:
//!
//! 1. The caller (the CLI's `serve` subcommand) loads a store-backed
//!    window and runs the engine once, exactly as `batch` would.
//! 2. The run's pair sets are pivoted into the read-optimized
//!    [`sibling_core::query::WindowQueryIndex`] and published behind an
//!    `Arc` — immutable from then on.
//! 3. A [`Server`] spawns N resident reader threads on the executor pool
//!    ([`sibling_executor::ThreadPool::spawn_resident`]); each answers
//!    the line [`protocol`] over TCP or unix sockets through the shared
//!    [`QueryPlanner`]. The hot path takes no lock and performs no
//!    allocation: readers share the index through the `Arc` and reuse a
//!    per-thread response buffer.
//!
//! Determinism: every served answer is derived from the exact pair
//! vectors the batch run produced, so responses are bit-identical to
//! recomputing the window and filtering its output — see the module docs
//! of [`sibling_core::query`] for the argument and the property tests
//! pinning it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod planner;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use planner::QueryPlanner;
pub use protocol::{parse_request, ProtocolError, Request, Response};
pub use server::{Endpoint, Server, ServerHandle};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sibling_core::query::WindowQueryIndex;
    use sibling_core::{Ratio, SiblingPair, SiblingSet};
    use sibling_executor::ThreadPool;
    use sibling_net_types::MonthDate;

    use super::*;

    fn planner() -> QueryPlanner {
        let set = SiblingSet::from_pairs(vec![SiblingPair {
            v4: "10.0.0.0/24".parse().unwrap(),
            v6: "2600:1::/48".parse().unwrap(),
            similarity: Ratio::ONE,
            shared_domains: 3,
            v4_domains: 3,
            v6_domains: 3,
        }]);
        let index = WindowQueryIndex::build(&[(MonthDate::new(2024, 1), set)]).unwrap();
        QueryPlanner::new(Arc::new(index))
    }

    fn start_tcp(readers: usize) -> ServerHandle {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        server
            .start(planner(), ThreadPool::with_threads(2), readers)
            .unwrap()
    }

    #[test]
    fn tcp_round_trip_and_clean_shutdown() {
        let handle = start_tcp(2);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        assert_eq!(
            client.roundtrip("ping").unwrap(),
            Response::Ok(vec!["pong".into()])
        );
        assert_eq!(
            client
                .roundtrip("siblings 10.0.0.0/24 2600:1::/48 2024-01")
                .unwrap(),
            Response::Ok(vec!["10.0.0.0/24 2600:1::/48 1/1 3 3 3".into()])
        );
        drop(handle); // joins the readers; must not hang
    }

    #[test]
    fn malformed_requests_keep_the_connection_alive() {
        let handle = start_tcp(1);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let err = client.roundtrip("no-such-verb a b").unwrap();
        assert!(matches!(err, Response::Err { ref code, .. } if code == "unknown-verb"));
        let err = client.roundtrip("").unwrap();
        assert!(matches!(err, Response::Err { ref code, .. } if code == "empty"));
        // The same connection still answers real queries.
        assert_eq!(
            client.roundtrip("months").unwrap(),
            Response::Ok(vec!["2024-01".into()])
        );
    }

    #[test]
    fn concurrent_clients_on_multiple_readers() {
        let handle = start_tcp(3);
        let endpoint = handle.endpoint().to_string();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let endpoint = endpoint.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&endpoint).unwrap();
                    for _ in 0..50 {
                        assert_eq!(
                            client.roundtrip("partners 10.0.0.0/24 2024-01 0").unwrap(),
                            Response::Ok(vec!["10.0.0.0/24 2600:1::/48 1/1 3 3 3".into()])
                        );
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip_and_file_cleanup() {
        let path =
            std::env::temp_dir().join(format!("sibling-service-test-{}.sock", std::process::id()));
        let server = Server::bind(&Endpoint::Unix(path.clone())).unwrap();
        assert_eq!(server.endpoint(), format!("unix://{}", path.display()));
        let handle = server
            .start(planner(), ThreadPool::with_threads(1), 1)
            .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        match client.roundtrip("stats 2024-01").unwrap() {
            Response::Ok(rows) => {
                assert_eq!(rows.len(), 1);
                assert!(rows[0].starts_with("2024-01"), "{rows:?}");
                assert!(rows[0].contains("100.0%"), "{rows:?}");
            }
            err => panic!("unexpected {err:?}"),
        }
        drop(handle);
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
