//! The resident sibling query service.
//!
//! Batch runs answer one question and die; this crate keeps a scored
//! window alive and answers millions. The shape:
//!
//! 1. The caller (the CLI's `serve` subcommand) loads a store-backed
//!    window and runs the engine once, exactly as `batch` would.
//! 2. The run's pair sets are pivoted into the read-optimized
//!    [`sibling_core::query::WindowQueryIndex`] and published behind an
//!    `Arc` — immutable from then on.
//! 3. A [`Server`] spawns N resident reader threads on the executor pool
//!    ([`sibling_executor::ThreadPool::spawn_resident`]); each answers
//!    the line [`protocol`] over TCP or unix sockets through the shared
//!    [`QueryPlanner`]. The hot path takes no lock and performs no
//!    allocation: readers share the index through the `Arc` and reuse a
//!    per-thread response buffer.
//!
//! Determinism: every served answer is derived from the exact pair
//! vectors the batch run produced, so responses are bit-identical to
//! recomputing the window and filtering its output — see the module docs
//! of [`sibling_core::query`] for the argument and the property tests
//! pinning it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod ingest;
pub mod planner;
pub mod protocol;
pub mod replicate;
pub mod server;

pub use client::{Client, FailoverClient, RetryPolicy};
pub use ingest::{IngestSink, LiveWindow, RecoverReport};
pub use planner::QueryPlanner;
pub use protocol::{parse_request, ProtocolError, Request, Response};
pub use replicate::{follow, DeltaFeed, FollowerHandle, FollowerOptions, HealthGauges};
pub use server::{
    DrainReport, Endpoint, ServeOptions, ServeStats, ServeStatsSnapshot, Server, ServerHandle,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sibling_core::query::WindowQueryIndex;
    use sibling_core::{Ratio, SiblingPair, SiblingSet};
    use sibling_executor::ThreadPool;
    use sibling_net_types::MonthDate;

    use super::*;

    fn planner() -> QueryPlanner {
        let set = SiblingSet::from_pairs(vec![SiblingPair {
            v4: "10.0.0.0/24".parse().unwrap(),
            v6: "2600:1::/48".parse().unwrap(),
            similarity: Ratio::ONE,
            shared_domains: 3,
            v4_domains: 3,
            v6_domains: 3,
        }]);
        let index = WindowQueryIndex::build(&[(MonthDate::new(2024, 1), set)]).unwrap();
        QueryPlanner::new(Arc::new(index))
    }

    fn start_tcp(readers: usize) -> ServerHandle {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        server
            .start(planner(), ThreadPool::with_threads(2), readers)
            .unwrap()
    }

    #[test]
    fn tcp_round_trip_and_clean_shutdown() {
        let handle = start_tcp(2);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        assert_eq!(
            client.roundtrip("ping").unwrap(),
            Response::Ok(vec!["pong".into()])
        );
        assert_eq!(
            client
                .roundtrip("siblings 10.0.0.0/24 2600:1::/48 2024-01")
                .unwrap(),
            Response::Ok(vec!["10.0.0.0/24 2600:1::/48 1/1 3 3 3".into()])
        );
        drop(handle); // joins the readers; must not hang
    }

    #[test]
    fn malformed_requests_keep_the_connection_alive() {
        let handle = start_tcp(1);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let err = client.roundtrip("no-such-verb a b").unwrap();
        assert!(matches!(err, Response::Err { ref code, .. } if code == "unknown-verb"));
        let err = client.roundtrip("").unwrap();
        assert!(matches!(err, Response::Err { ref code, .. } if code == "empty"));
        // The same connection still answers real queries.
        assert_eq!(
            client.roundtrip("months").unwrap(),
            Response::Ok(vec!["2024-01".into()])
        );
    }

    #[test]
    fn concurrent_clients_on_multiple_readers() {
        let handle = start_tcp(3);
        let endpoint = handle.endpoint().to_string();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let endpoint = endpoint.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&endpoint).unwrap();
                    for _ in 0..50 {
                        assert_eq!(
                            client.roundtrip("partners 10.0.0.0/24 2024-01 0").unwrap(),
                            Response::Ok(vec!["10.0.0.0/24 2600:1::/48 1/1 3 3 3".into()])
                        );
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_with_busy() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_with(
                planner(),
                ThreadPool::with_threads(2),
                2,
                ServeOptions {
                    max_conns: 1,
                    ..ServeOptions::default()
                },
            )
            .unwrap();
        let mut first = Client::connect(handle.endpoint()).unwrap();
        assert!(matches!(first.roundtrip("ping").unwrap(), Response::Ok(_)));
        // The second connection exceeds the cap: one typed busy line.
        let mut second = Client::connect(handle.endpoint()).unwrap();
        match second.roundtrip("ping").unwrap() {
            Response::Err { code, message } => {
                assert_eq!(code, "busy");
                assert!(message.contains("retry"), "{message}");
            }
            other => panic!("expected busy shed, got {other:?}"),
        }
        // The capped connection is unaffected.
        assert!(matches!(first.roundtrip("ping").unwrap(), Response::Ok(_)));
        assert!(handle.stats().shed_connections >= 1);
    }

    #[test]
    fn pressure_sheds_expensive_verbs_only() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_with(
                planner(),
                ThreadPool::with_threads(2),
                2,
                ServeOptions {
                    shed_expensive_at: 1, // any active connection = pressure
                    ..ServeOptions::default()
                },
            )
            .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        match client.roundtrip("partners 10.0.0.0/24 2024-01 0").unwrap() {
            Response::Err { code, .. } => assert_eq!(code, "busy"),
            other => panic!("expected shed partners, got {other:?}"),
        }
        // Point lookups and liveness still answer on the same connection.
        assert_eq!(
            client
                .roundtrip("siblings 10.0.0.0/24 2600:1::/48 2024-01")
                .unwrap(),
            Response::Ok(vec!["10.0.0.0/24 2600:1::/48 1/1 3 3 3".into()])
        );
        assert!(handle.stats().shed_requests >= 1);
    }

    #[test]
    fn drain_finishes_in_flight_and_reports() {
        let handle = start_tcp(2);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        assert!(matches!(client.roundtrip("ping").unwrap(), Response::Ok(_)));
        drop(client);
        let report = handle.drain();
        assert!(report.drained, "no in-flight work should remain");
        assert!(report.stats.served >= 1);
        assert_eq!(report.stats.panics, 0);
    }

    #[test]
    fn slow_request_lines_hit_the_deadline() {
        use std::io::{Read as _, Write as _};
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_with(
                planner(),
                ThreadPool::with_threads(1),
                1,
                ServeOptions {
                    request_deadline: std::time::Duration::from_millis(100),
                    ..ServeOptions::default()
                },
            )
            .unwrap();
        let addr = handle.endpoint().strip_prefix("tcp://").unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        // A slow-loris request: bytes arrive, the newline never does.
        stream.write_all(b"pin").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap(); // server closes
        assert!(response.starts_with("err timeout "), "{response:?}");
        assert!(response.contains("request"), "{response:?}");
        assert!(handle.stats().timeouts >= 1);
    }

    #[test]
    fn idle_connections_are_closed() {
        use std::io::Read as _;
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_with(
                planner(),
                ThreadPool::with_threads(1),
                1,
                ServeOptions {
                    idle_timeout: std::time::Duration::from_millis(100),
                    ..ServeOptions::default()
                },
            )
            .unwrap();
        let addr = handle.endpoint().strip_prefix("tcp://").unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap(); // server closes
        assert!(response.starts_with("err timeout "), "{response:?}");
        assert!(response.contains("idle"), "{response:?}");
    }

    #[test]
    fn retry_roundtrip_rides_out_a_shed_connection() {
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_with(
                planner(),
                ThreadPool::with_threads(2),
                2,
                ServeOptions {
                    max_conns: 1,
                    ..ServeOptions::default()
                },
            )
            .unwrap();
        let endpoint = handle.endpoint().to_string();
        let mut holder = Client::connect(&endpoint).unwrap();
        assert!(matches!(holder.roundtrip("ping").unwrap(), Response::Ok(_)));
        let retrier = std::thread::spawn(move || {
            let policy = RetryPolicy {
                attempts: 10,
                base: std::time::Duration::from_millis(10),
                ..RetryPolicy::default()
            };
            let mut client = Client::connect_with(&endpoint, &policy).unwrap();
            client.retry_roundtrip("ping", &policy)
        });
        // Free the slot while the retrier is backing off.
        std::thread::sleep(std::time::Duration::from_millis(40));
        drop(holder);
        let response = retrier.join().unwrap().unwrap();
        assert_eq!(response, Response::Ok(vec!["pong".into()]));
    }

    #[test]
    fn connect_with_gives_up_after_its_attempts() {
        // Nothing listens here (bind, learn the port, drop the listener).
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base: std::time::Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let err = Client::connect_with(&format!("tcp://127.0.0.1:{port}"), &policy).unwrap_err();
        assert!(RetryPolicy::transient(&err), "{err}");
    }

    /// Property: every backoff delay stays within its configured bounds —
    /// `min(base·2^attempt, cap)/2 ≤ delay(attempt) ≤ cap` — for any
    /// base, cap, seed and attempt, including extreme shifts.
    #[test]
    fn prop_backoff_delays_stay_within_bounds() {
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        let strategy = (1u64..10_000, 1u64..10_000, 0u64..u64::MAX, 0u32..80);
        runner
            .run(&strategy, |(base_ms, cap_ms, seed, attempt)| {
                let policy = RetryPolicy {
                    attempts: 4,
                    base: std::time::Duration::from_millis(base_ms),
                    cap: std::time::Duration::from_millis(cap_ms),
                    seed,
                };
                let delay = policy.delay(attempt);
                let full = policy
                    .base
                    .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                    .min(policy.cap);
                assert!(delay <= policy.cap, "{delay:?} > cap {:?}", policy.cap);
                assert!(delay <= full, "{delay:?} > full {full:?}");
                assert!(delay >= full / 2, "{delay:?} < {:?}", full / 2);
                Ok(())
            })
            .unwrap();
    }

    /// A minimal writer for wire-path tests: every accepted append
    /// publishes a one-pair month, without the full engine behind it.
    struct StubSink {
        window: Arc<sibling_core::PublishedWindow>,
        months: Vec<(MonthDate, SiblingSet)>,
    }

    impl IngestSink for StubSink {
        fn ingest(&mut self, delta: &sibling_dns::SnapshotDelta) -> Result<u64, String> {
            let tail = self.months.last().expect("seeded").0;
            if delta.from_date() != tail {
                return Err(format!(
                    "delta base {} is not the tail {tail}",
                    delta.from_date()
                ));
            }
            self.months.push((
                delta.to_date(),
                SiblingSet::from_pairs(vec![SiblingPair {
                    v4: "10.0.0.0/24".parse().unwrap(),
                    v6: "2600:1::/48".parse().unwrap(),
                    similarity: Ratio::ONE,
                    shared_domains: 1,
                    v4_domains: 1,
                    v6_domains: 1,
                }]),
            ));
            let index = WindowQueryIndex::build(&self.months).map_err(|e| e.to_string())?;
            Ok(self.window.swap(Arc::new(index)))
        }
    }

    #[test]
    fn live_daemon_ingests_over_the_wire() {
        use sibling_dns::{DnsSnapshot, SnapshotDelta};
        let seed = SiblingSet::from_pairs(vec![SiblingPair {
            v4: "10.0.0.0/24".parse().unwrap(),
            v6: "2600:1::/48".parse().unwrap(),
            similarity: Ratio::ONE,
            shared_domains: 1,
            v4_domains: 1,
            v6_domains: 1,
        }]);
        let months = vec![(MonthDate::new(2024, 1), seed)];
        let index = WindowQueryIndex::build(&months).unwrap();
        let window = Arc::new(sibling_core::PublishedWindow::new(Arc::new(index)));
        let sink = StubSink {
            window: Arc::clone(&window),
            months,
        };
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let handle = server
            .start_live(
                QueryPlanner::live(window),
                ThreadPool::with_threads(2),
                2,
                ServeOptions::default(),
                Box::new(sink),
            )
            .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        assert_eq!(
            client.roundtrip("epoch").unwrap(),
            Response::Ok(vec!["1".into()])
        );

        // An empty month-over-month delta carried as hex.
        let delta = SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, 1)),
            &DnsSnapshot::new(MonthDate::new(2024, 2)),
        );
        let line = Request::Ingest(delta).to_string();
        assert_eq!(
            client.roundtrip(&line).unwrap(),
            Response::Ok(vec!["2".into()]),
            "ingest answers the published epoch"
        );
        assert_eq!(
            client.roundtrip("months").unwrap(),
            Response::Ok(vec!["2024-01".into(), "2024-02".into()])
        );
        assert_eq!(
            client.roundtrip("epoch").unwrap(),
            Response::Ok(vec!["2".into()])
        );

        // A stale delta fails typed, without advancing the epoch.
        let stale = SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, 1)),
            &DnsSnapshot::new(MonthDate::new(2024, 2)),
        );
        match client
            .roundtrip(&Request::Ingest(stale).to_string())
            .unwrap()
        {
            Response::Err { code, message } => {
                assert_eq!(code, "ingest-failed");
                assert!(message.contains("2024-01"), "{message}");
            }
            other => panic!("expected ingest-failed, got {other:?}"),
        }

        // Health reflects the writer's counters.
        match client.roundtrip("health").unwrap() {
            Response::Ok(lines) => {
                for want in [
                    "months 2",
                    "epoch 2",
                    "ingests 2",
                    "ingest-failures 1",
                    "epochs-published 1",
                    "ingest-lag 0",
                ] {
                    assert!(
                        lines.iter().any(|l| l == want),
                        "missing {want:?} in {lines:?}"
                    );
                }
            }
            other => panic!("expected health lines, got {other:?}"),
        }
        let stats = handle.stats();
        assert_eq!(
            (stats.ingests, stats.ingest_failures, stats.epochs),
            (2, 1, 1)
        );
    }

    #[test]
    fn failover_client_rotates_past_dead_replicas() {
        // A dead endpoint (bound, learned, dropped) and a live replica.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            format!("tcp://{}", listener.local_addr().unwrap())
        };
        let handle = start_tcp(2);
        let policy = RetryPolicy {
            attempts: 3,
            base: std::time::Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut client =
            FailoverClient::new([dead.clone(), handle.endpoint().to_string()], policy).unwrap();
        // The dead replica is rotated past transparently.
        assert_eq!(
            client.roundtrip("ping").unwrap(),
            Response::Ok(vec!["pong".into()])
        );
        // The surviving connection is sticky: the next round-trip
        // answers without re-dialing the dead one.
        assert_eq!(
            client.roundtrip("months").unwrap(),
            Response::Ok(vec!["2024-01".into()])
        );
        // Every replica down: the transport error surfaces after the
        // retry budget, distinguishable from a rejected request.
        drop(handle);
        let err = client.roundtrip("ping").unwrap_err();
        assert!(RetryPolicy::transient(&err), "{err}");

        assert!(FailoverClient::new(Vec::<String>::new(), policy).is_err());
    }

    #[test]
    fn sub_without_a_feed_answers_the_typed_no_feed_error() {
        let handle = start_tcp(1);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        match client.roundtrip("sub 0").unwrap() {
            Response::Err { code, message } => {
                assert_eq!(code, "no-feed");
                assert!(message.contains("primary"), "{message}");
            }
            other => panic!("expected no-feed, got {other:?}"),
        }
        // The connection keeps serving reads.
        assert_eq!(
            client.roundtrip("ping").unwrap(),
            Response::Ok(vec!["pong".into()])
        );
    }

    #[test]
    fn read_only_daemons_reject_ingest_with_a_typed_error() {
        use sibling_dns::{DnsSnapshot, SnapshotDelta};
        let handle = start_tcp(1);
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let delta = SnapshotDelta::diff(
            &DnsSnapshot::new(MonthDate::new(2024, 1)),
            &DnsSnapshot::new(MonthDate::new(2024, 2)),
        );
        match client
            .roundtrip(&Request::Ingest(delta).to_string())
            .unwrap()
        {
            Response::Err { code, message } => {
                assert_eq!(code, "read-only");
                assert!(message.contains("--ingest"), "{message}");
            }
            other => panic!("expected read-only, got {other:?}"),
        }
        // The connection keeps serving reads.
        assert_eq!(
            client.roundtrip("ping").unwrap(),
            Response::Ok(vec!["pong".into()])
        );
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip_and_file_cleanup() {
        let path =
            std::env::temp_dir().join(format!("sibling-service-test-{}.sock", std::process::id()));
        let server = Server::bind(&Endpoint::Unix(path.clone())).unwrap();
        assert_eq!(server.endpoint(), format!("unix://{}", path.display()));
        let handle = server
            .start(planner(), ThreadPool::with_threads(1), 1)
            .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        match client.roundtrip("stats 2024-01").unwrap() {
            Response::Ok(rows) => {
                assert_eq!(rows.len(), 1);
                assert!(rows[0].starts_with("2024-01"), "{rows:?}");
                assert!(rows[0].contains("100.0%"), "{rows:?}");
            }
            err => panic!("unexpected {err:?}"),
        }
        drop(handle);
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
