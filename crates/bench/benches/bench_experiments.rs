//! Analysis-experiment benchmarks: the §4 figures (stability, longitudinal,
//! organizations, business types, HG/CDN, ROV) and the §3.5/§3.6
//! validations. Each bench regenerates its artefact via the experiment
//! registry and prints the shape-check verdicts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sibling_analysis::run_by_id;
use sibling_bench::bench_context;

fn bench_experiment(c: &mut Criterion, bench_name: &str, ids: &[&str]) {
    let ctx = bench_context();
    let mut group = c.benchmark_group(bench_name);
    for id in ids {
        // Print the artefact's verdicts once (warm the caches too).
        let result = run_by_id(ctx, id).unwrap_or_else(|| panic!("{id} registered"));
        for check in &result.checks {
            let mark = if check.passed { "PASS" } else { "note" };
            println!("[{id}] {mark}: {} ({})", check.description, check.detail);
        }
        group.bench_function(*id, |b| b.iter(|| black_box(run_by_id(ctx, id).unwrap())));
    }
    group.finish();
}

/// Fig. 6 (port-scan heatmap) and §3.5 ground truths.
fn bench_validation(c: &mut Criterion) {
    bench_experiment(c, "validation", &["fig06", "gt_atlas", "gt_vps"]);
}

/// Fig. 7 (stability) and Figs. 9–12 (longitudinal).
fn bench_longitudinal(c: &mut Criterion) {
    bench_experiment(
        c,
        "longitudinal",
        &["fig07", "fig09", "fig10", "fig11", "fig12"],
    );
}

/// Figs. 14–16 (organizations + business types).
fn bench_org(c: &mut Criterion) {
    bench_experiment(c, "org", &["fig14", "fig15", "fig16"]);
}

/// Fig. 17 (HG/CDN) and Fig. 18 (ROV).
fn bench_hg_rov(c: &mut Criterion) {
    bench_experiment(c, "hg_rov", &["fig17", "fig18"]);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_validation, bench_longitudinal, bench_org, bench_hg_rov
);
criterion_main!(benches);
