//! SP-Tuner benchmarks (§3.3–3.4, Figs. 4, 5, 19, 22).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sibling_bench::bench_context;
use sibling_core::tuner::less_specific::{tune_less_specific, SpTunerLsConfig};
use sibling_core::tuner::more_specific::tune_more_specific;
use sibling_core::SpTunerConfig;

/// Fig. 5: the tuning ladder (default → /24-/48 → /28-/96).
fn bench_tuner_ladder(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let index = ctx.index(date);
    let base = ctx.default_pairs(date);
    println!(
        "[fig05] default: {} pairs, perfect {:.1}%",
        base.len(),
        base.perfect_match_share() * 100.0
    );
    let mut group = c.benchmark_group("fig05_tuner");
    for (name, config) in [
        ("routable_24_48", SpTunerConfig::routable()),
        ("best_28_96", SpTunerConfig::best()),
    ] {
        let outcome = tune_more_specific(&index, &base, &config);
        println!(
            "[fig05] {name}: {} pairs, perfect {:.1}%, {} refined, {} derived, {} steps",
            outcome.pairs.len(),
            outcome.pairs.perfect_match_share() * 100.0,
            outcome.refined,
            outcome.derived,
            outcome.steps
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(tune_more_specific(&index, &base, &config)))
        });
    }
    group.finish();
}

/// Figs. 4/19: one row of the threshold sweep (the full grid is the
/// `full_reproduction` harness's job; the bench times representative
/// cells across the depth range).
fn bench_tuner_sweep_cells(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let index = ctx.index(date);
    let base = ctx.default_pairs(date);
    let mut group = c.benchmark_group("fig04_fig19_sweep");
    for (v4, v6) in [(16u8, 32u8), (22, 64), (28, 96), (31, 124)] {
        let config = SpTunerConfig::with_thresholds(v4, v6);
        let outcome = tune_more_specific(&index, &base, &config);
        let (mean, std) = outcome.pairs.similarity_mean_std();
        println!("[fig04/fig19] threshold /{v4}-/{v6}: mean {mean:.3} std {std:.3}");
        group.bench_function(format!("v4_{v4}_v6_{v6}"), |b| {
            b.iter(|| black_box(tune_more_specific(&index, &base, &config)))
        });
    }
    group.finish();
}

/// Fig. 22: the less-specific variant.
fn bench_tuner_less_specific(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let index = ctx.index(date);
    let base = ctx.default_pairs(date);
    let mut group = c.benchmark_group("fig22_tuner_ls");
    for (name, config) in [
        ("with_threshold", SpTunerLsConfig::default()),
        ("without_threshold", SpTunerLsConfig::without_threshold()),
    ] {
        let outcome = tune_less_specific(&index, &base, ctx.world.rib(), &config);
        let (mean, _) = outcome.pairs.similarity_mean_std();
        println!(
            "[fig22] LS {name}: mean {mean:.3} ({} refined — the negative result)",
            outcome.refined
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(tune_less_specific(&index, &base, ctx.world.rib(), &config)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tuner_ladder, bench_tuner_sweep_cells, bench_tuner_less_specific
);
criterion_main!(benches);
