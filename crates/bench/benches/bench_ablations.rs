//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * best-match policy (union vs one-sided selection, §3.1 step 4);
//! * SP-Tuner equal-descent (accept ties vs require strict improvement);
//! * similarity metric choice feeding best-match selection (§3.2);
//! * set-pair grouping on top of tuned pairs (§6 extension).
//!
//! Each ablation prints the quality deltas so `cargo bench` documents not
//! just the cost but the *effect* of each choice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sibling_bench::bench_context;
use sibling_core::tuner::more_specific::tune_more_specific;
use sibling_core::{build_set_pairs, detect, BestMatchPolicy, SimilarityMetric, SpTunerConfig};

/// §3.1 step 4: the union policy versus one-sided best matches.
fn bench_best_match_policy(c: &mut Criterion) {
    let ctx = bench_context();
    let index = ctx.index(ctx.day0());
    let mut group = c.benchmark_group("ablation_policy");
    for (name, policy) in [
        ("union", BestMatchPolicy::Union),
        ("v4_side", BestMatchPolicy::V4Side),
        ("v6_side", BestMatchPolicy::V6Side),
    ] {
        let set = detect(&index, SimilarityMetric::Jaccard, policy);
        let (v4, v6) = set.unique_prefix_counts();
        println!(
            "[ablation:policy] {name}: {} pairs ({v4} v4 / {v6} v6), perfect {:.1}%",
            set.len(),
            set.perfect_match_share() * 100.0
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(detect(&index, SimilarityMetric::Jaccard, policy)))
        });
    }
    group.finish();
}

/// SP-Tuner equal-descent: accepting ties is what drives pairs down to
/// the threshold lengths (Fig. 36); strict improvement stops early.
fn bench_equal_descent(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let index = ctx.index(date);
    let base = ctx.default_pairs(date);
    let mut group = c.benchmark_group("ablation_equal_descent");
    for (name, allow_equal) in [("allow_equal", true), ("strict_improvement", false)] {
        let config = SpTunerConfig {
            allow_equal,
            ..SpTunerConfig::best()
        };
        let outcome = tune_more_specific(&index, &base, &config);
        let at_threshold = outcome
            .pairs
            .iter()
            .filter(|p| p.v4.len() == 28 && p.v6.len() == 96)
            .count();
        println!(
            "[ablation:descent] {name}: perfect {:.1}%, {:.1}% of pairs end exactly at /28-/96, {} steps",
            outcome.pairs.perfect_match_share() * 100.0,
            at_threshold as f64 / outcome.pairs.len().max(1) as f64 * 100.0,
            outcome.steps
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(tune_more_specific(&index, &base, &config)))
        });
    }
    group.finish();
}

/// §3.2: what best-match selection looks like under each metric (the
/// overlap coefficient's subset saturation is why the paper rejects it).
fn bench_metric_choice(c: &mut Criterion) {
    let ctx = bench_context();
    let index = ctx.index(ctx.day0());
    let mut group = c.benchmark_group("ablation_metric");
    for (name, metric) in [
        ("jaccard", SimilarityMetric::Jaccard),
        ("dice", SimilarityMetric::Dice),
        ("overlap", SimilarityMetric::Overlap),
    ] {
        let set = detect(&index, metric, BestMatchPolicy::Union);
        println!(
            "[ablation:metric] {name}: {} pairs, share at 1.0 = {:.3}",
            set.len(),
            set.perfect_match_share()
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(detect(&index, metric, BestMatchPolicy::Union)))
        });
    }
    group.finish();
}

/// §6 extension: set-pair grouping over tuned pairs.
fn bench_set_pairs(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let index = ctx.index(date);
    let tuned = ctx.tuned_pairs(date, SpTunerConfig::best());
    let set_pairs = build_set_pairs(&index, &tuned);
    println!(
        "[ablation:setpairs] {} tuned pairs (perfect {:.1}%) → {} set pairs (perfect {:.1}%), {} merged",
        tuned.len(),
        tuned.perfect_match_share() * 100.0,
        set_pairs.len(),
        set_pairs.perfect_match_share() * 100.0,
        set_pairs.merged().count()
    );
    c.bench_function("ablation_set_pairs", |b| {
        b.iter(|| black_box(build_set_pairs(&index, &tuned)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_best_match_policy, bench_equal_descent, bench_metric_choice, bench_set_pairs
);
criterion_main!(benches);
