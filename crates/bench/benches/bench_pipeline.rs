//! Detection-pipeline benchmarks (§3.1, Figs. 1–2, 8, 13).
//!
//! Each bench prints the headline numbers of the artefact it regenerates
//! before timing the computation that produces them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sibling_bench::bench_context;
use sibling_core::{detect, BestMatchPolicy, PrefixDomainIndex, SimilarityMetric};

/// Fig. 1: snapshot resolution (domains + DS domains per month).
fn bench_snapshot_resolution(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let snap = ctx.world.snapshot(date);
    println!(
        "[fig01] {date}: {} domains, {} dual-stack ({:.1}%)",
        snap.domain_count(),
        snap.ds_count(),
        snap.ds_share() * 100.0
    );
    c.bench_function("fig01_snapshot_resolution", |b| {
        b.iter(|| black_box(ctx.world.snapshot(date)))
    });
}

/// §3.1 step 2: prefix grouping (index construction).
fn bench_index_build(c: &mut Criterion) {
    let ctx = bench_context();
    let snap = ctx.world.snapshot(ctx.day0());
    let index = PrefixDomainIndex::build(&snap, ctx.world.rib());
    let (v4, v6) = index.group_counts();
    println!("[fig01/§3.1] prefix groups: {v4} IPv4, {v6} IPv6");
    c.bench_function("pipeline_index_build", |b| {
        b.iter(|| black_box(PrefixDomainIndex::build(&snap, ctx.world.rib())))
    });
}

/// §3.1 steps 3–4 and Fig. 2: similarity scoring + best-match selection
/// under all three metrics.
fn bench_detection_metrics(c: &mut Criterion) {
    let ctx = bench_context();
    let index = ctx.index(ctx.day0());
    let mut group = c.benchmark_group("fig02_detection");
    for (name, metric) in [
        ("jaccard", SimilarityMetric::Jaccard),
        ("dice", SimilarityMetric::Dice),
        ("overlap", SimilarityMetric::Overlap),
    ] {
        let set = detect(&index, metric, BestMatchPolicy::Union);
        println!(
            "[fig02] {name}: {} pairs, share at 1.0 = {:.3}",
            set.len(),
            set.perfect_match_share()
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(detect(&index, metric, BestMatchPolicy::Union)))
        });
    }
    group.finish();
}

/// Figs. 8/13: pair-statistics aggregation (bins and CIDR sizes).
fn bench_pair_statistics(c: &mut Criterion) {
    let ctx = bench_context();
    let pairs = ctx.default_pairs(ctx.day0());
    let single = pairs
        .iter()
        .filter(|p| p.v4_domains == 1 && p.v6_domains == 1)
        .count();
    let modal = pairs
        .iter()
        .filter(|p| p.v4.len() == 24 && p.v6.len() == 48)
        .count();
    println!(
        "[fig08] single-domain pairs: {:.1}%  [fig13] /24x/48 pairs: {:.1}%",
        single as f64 / pairs.len().max(1) as f64 * 100.0,
        modal as f64 / pairs.len().max(1) as f64 * 100.0
    );
    c.bench_function("fig08_fig13_pair_statistics", |b| {
        b.iter(|| {
            let mut bins = [0usize; 6];
            let mut cidr = std::collections::BTreeMap::new();
            for p in pairs.iter() {
                let k = match p.v4_domains {
                    1 => 0,
                    2..=5 => 1,
                    6..=10 => 2,
                    11..=50 => 3,
                    51..=100 => 4,
                    _ => 5,
                };
                bins[k] += 1;
                *cidr.entry((p.v4.len(), p.v6.len())).or_insert(0usize) += 1;
            }
            black_box((bins, cidr))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot_resolution, bench_index_build, bench_detection_metrics, bench_pair_statistics
);
criterion_main!(benches);
