//! `query_throughput`: the resident query daemon's hot path, measured.
//!
//! The serving stack above the socket is [`QueryPlanner::answer_line`] —
//! parse one request line, walk the published [`WindowQueryIndex`],
//! render the response into a reused buffer. Readers share the immutable
//! index through an `Arc` and hold no locks, so service throughput is
//! (single-reader throughput) × (reader threads) minus kernel socket
//! costs. This bench measures exactly that planner path on the same
//! cached 24-month low-churn store window the other window benches use.
//!
//! The acceptance bar is ≥100k queries/sec aggregate on the loaded
//! window. The build container is 1-core, so the gate recorded into
//! `target/bench.json` is the scaling argument: `single_reader_qps`
//! (measured) × `available_parallelism` (recorded alongside), plus
//! `aggregate_qps_measured` from actually running one planner per
//! machine core — on a 1-core box the two collapse to the same number.
//! The assert fails the bench if neither clears the bar.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use sibling_bench::{cached_snapshot_window, low_churn_world};
use sibling_core::query::WindowQueryIndex;
use sibling_core::DetectEngine;
use sibling_dns::SnapshotFile;
use sibling_service::QueryPlanner;

/// Scores the cached 24-month window once and publishes it — what
/// `sibling-cli serve` does at startup.
fn build_planner() -> QueryPlanner {
    let months = 24i32;
    let world = low_churn_world(2024);
    let day0 = world.config.end;
    let from = day0.add_months(-(months - 1));
    let archive = world.rib_archive();
    let snaps: Vec<Arc<SnapshotFile>> =
        cached_snapshot_window("low-churn-small-2024", &world, from, day0);
    let mut engine = DetectEngine::default();
    let run = engine
        .run_window(from, day0, &archive, |d| {
            snaps[d.months_since(&from).max(0) as usize].clone()
        })
        .expect("window scores");
    QueryPlanner::new(WindowQueryIndex::publish(&run).expect("non-empty window"))
}

/// Pre-rendered request lines per family, sampled from the resident
/// window itself so every query is shaped like production traffic
/// (existing prefixes, in-window months, a sprinkle of misses).
fn query_corpus(planner: &QueryPlanner) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    let index = planner.index();
    let (first, last) = index.bounds();
    let mut point = Vec::new();
    let mut partners = Vec::new();
    let mut history = Vec::new();
    for &month in index.months() {
        let view = index.month(month).expect("loaded month");
        let pairs = view.set().as_slice();
        let stride = (pairs.len() / 24).max(1);
        for pair in pairs.iter().step_by(stride) {
            point.push(format!("siblings {} {} {month}", pair.v4, pair.v6));
            // A guaranteed miss: the documentation prefix never appears
            // in generated worlds.
            point.push(format!("siblings {} 2001:db8::/48 {month}", pair.v4));
            partners.push(format!("partners {} {month} 5", pair.v4));
            partners.push(format!("partners {} {month} 3", pair.v6));
            history.push(format!("pair {} {} {first}..{last}", pair.v4, pair.v6));
        }
    }
    // The mixed stream interleaves the three families round-robin with
    // an occasional aggregate query, approximating a live mix.
    let mut mixed = Vec::new();
    let longest = point.len().max(partners.len()).max(history.len());
    for i in 0..longest {
        mixed.push(point[i % point.len()].clone());
        mixed.push(partners[i % partners.len()].clone());
        mixed.push(history[i % history.len()].clone());
        if i % 16 == 0 {
            mixed.push(format!(
                "stats {}",
                index.months()[i % index.months().len()]
            ));
        }
    }
    (point, partners, history, mixed)
}

/// One reader's measured throughput: `total` queries round-robined over
/// `lines`, answered into one reused buffer.
fn measure_qps(planner: &QueryPlanner, lines: &[String], total: usize) -> f64 {
    let mut out = String::new();
    let start = Instant::now();
    for i in 0..total {
        planner.answer_line(&lines[i % lines.len()], &mut out);
        black_box(out.len());
    }
    total as f64 / start.elapsed().as_secs_f64()
}

fn bench_query_throughput(c: &mut Criterion) {
    // The qps gate doubles as the failpoint zero-overhead check: the
    // default build compiles every site to an inlined no-op and cannot
    // have anything configured, so the bar below is measured on the
    // clean hot path. A `--features failpoints` bench run still passes
    // as long as no schedule is armed.
    assert!(
        !sibling_failpoint::armed(),
        "failpoints armed during the throughput gate"
    );
    let planner = build_planner();
    let index = planner.index();
    println!(
        "[serve] window resident: {} months, {} pairs",
        index.months().len(),
        index.total_pairs()
    );
    let (point, partners, history, mixed) = query_corpus(&planner);
    println!(
        "[serve] corpus: {} point, {} partners, {} history, {} mixed",
        point.len(),
        partners.len(),
        history.len(),
        mixed.len()
    );

    let mut group = c.benchmark_group("query_throughput");
    for (name, lines) in [
        ("point", &point),
        ("partners", &partners),
        ("history", &history),
        ("mixed", &mixed),
    ] {
        let mut out = String::new();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                planner.answer_line(&lines[i % lines.len()], &mut out);
                i += 1;
                black_box(out.len())
            })
        });
    }
    group.finish();

    // The ≥100k qps gate. Single-reader throughput is measured over a
    // long mixed run; the aggregate is (a) the scaling argument
    // single × available_parallelism — readers share an immutable index
    // with zero locks, so they do not contend — and (b) actually
    // measured with one planner clone per core. Either clearing the bar
    // passes; on the 1-core build container both are ~equal and the
    // single reader must clear it alone.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total = 200_000usize;
    let single = measure_qps(&planner, &mixed, total);
    let scaled = single * cores as f64;
    let aggregate = {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..cores {
                let planner = planner.clone();
                let mixed = &mixed;
                scope.spawn(move || {
                    let mut out = String::new();
                    for i in 0..total {
                        planner.answer_line(&mixed[i % mixed.len()], &mut out);
                        black_box(out.len());
                    }
                });
            }
        });
        (total * cores) as f64 / start.elapsed().as_secs_f64()
    };
    println!(
        "[serve] single reader {:.0} qps; × {cores} core(s) = {:.0} qps scaled; {:.0} qps measured aggregate",
        single, scaled, aggregate
    );
    c.record_value("query_throughput/available_parallelism", cores as u64);
    c.record_value("query_throughput/single_reader_qps", single as u64);
    c.record_value("query_throughput/scaled_qps", scaled as u64);
    c.record_value("query_throughput/aggregate_qps_measured", aggregate as u64);
    assert!(
        scaled.max(aggregate) >= 100_000.0,
        "query throughput below the 100k qps bar: single {single:.0} qps, \
         scaled {scaled:.0} qps, aggregate {aggregate:.0} qps"
    );
}

/// `ingest_throughput`: the live window's write path, measured — deltas
/// journaled (fsync'd), applied and epoch-published over the same
/// resident 24-month window, while a concurrent reader sustains queries
/// against the published index. Records deltas/sec applied and the
/// reader's qps *during* ingest into `target/bench.json` — the epoch
/// swap is the only writer/reader touch point, so reads should barely
/// notice the writer.
fn bench_ingest_throughput(c: &mut Criterion) {
    use sibling_core::{EngineConfig, EpochState};
    use sibling_dns::{DnsSnapshot, DomainId, SnapshotDelta};
    use sibling_service::{IngestSink, LiveWindow};

    let months = 24i32;
    let world = low_churn_world(2024);
    let day0 = world.config.end;
    let from = day0.add_months(-(months - 1));
    let archive = world.rib_archive();
    let snaps: Vec<Arc<SnapshotFile>> =
        cached_snapshot_window("low-churn-small-2024", &world, from, day0);
    let mut engine = DetectEngine::default();
    let run = engine
        .run_window(from, day0, &archive, |d| {
            snaps[d.months_since(&from).max(0) as usize].clone()
        })
        .expect("window scores");
    let tail = Arc::new(DnsSnapshot::materialize(&*snaps[(months - 1) as usize]));
    let (epoch, index) = EpochState::seed(
        EngineConfig::default(),
        archive,
        run.results,
        Arc::clone(&tail),
    )
    .expect("window seeds");
    let dir = std::env::temp_dir().join(format!("sibling-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("ingest.sibjrnl");
    let (mut live, _) =
        LiveWindow::recover(epoch, index, &journal, None).expect("live window recovers");
    let planner = QueryPlanner::live(live.published());

    // The delta pair: a same-month retarget adding one synthetic domain
    // to the tail snapshot, and its inverse — the steady-state trickle a
    // live feed applies between monthly appends. Alternating them keeps
    // every ingest valid forever.
    let mut variant = (*tail).clone();
    variant.merge(
        DomainId(u32::MAX - 1),
        vec![u32::from(std::net::Ipv4Addr::new(203, 0, 200, 1))],
        vec![u128::from(std::net::Ipv6Addr::new(
            0x2600, 1, 0, 0, 0, 0, 0, 0xbeef,
        ))],
    );
    let fwd = SnapshotDelta::diff(&tail, &variant);
    let rev = SnapshotDelta::diff(&variant, &tail);

    let mut group = c.benchmark_group("ingest_throughput");
    let mut flip = false;
    group.bench_function("small_retarget", |b| {
        b.iter(|| {
            let delta = if flip { &rev } else { &fwd };
            flip = !flip;
            black_box(live.ingest(delta).expect("retarget applies"))
        })
    });
    group.finish();

    // The measured run: one writer streaming deltas while one reader
    // hammers the published window with the mixed corpus.
    let (_, _, _, mixed) = query_corpus(&planner);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let total = 100usize;
    let (dps, reader_qps) = std::thread::scope(|scope| {
        let reader = {
            let planner = planner.clone();
            let mixed = &mixed;
            let stop = &stop;
            scope.spawn(move || {
                let mut out = String::new();
                let mut n = 0u64;
                let start = Instant::now();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    planner.answer_line(&mixed[n as usize % mixed.len()], &mut out);
                    black_box(out.len());
                    n += 1;
                }
                n as f64 / start.elapsed().as_secs_f64()
            })
        };
        let start = Instant::now();
        for i in 0..total {
            let delta = if i % 2 == 0 { &fwd } else { &rev };
            live.ingest(delta).expect("retarget applies");
        }
        let dps = total as f64 / start.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (dps, reader.join().expect("reader thread"))
    });
    println!(
        "[ingest] {dps:.0} deltas/sec applied+published; reader sustained {reader_qps:.0} qps \
         during ingest; final epoch {}",
        live.published().epoch()
    );
    c.record_value("ingest_throughput/deltas_per_sec", dps as u64);
    c.record_value(
        "ingest_throughput/reader_qps_during_ingest",
        reader_qps as u64,
    );
    c.record_value(
        "ingest_throughput/epochs_published",
        live.published().epoch(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `replication_feed`: the primary's fan-out hot path, measured — hex
/// armoring + bounded retention on [`DeltaFeed::publish`] (once per
/// accepted ingest) and cursor-filtered batch collection on
/// `collect_since` (once per follower poll). Both run under the feed's
/// mutex, so their cost bounds how much a fleet of polling followers
/// can tax the write path. Records published deltas/sec and full-batch
/// collections/sec into `target/bench.json`.
fn bench_replication_feed(c: &mut Criterion) {
    use sibling_dns::{DnsSnapshot, DomainId, SnapshotDelta};
    use sibling_service::replicate::SUB_BATCH;
    use sibling_service::DeltaFeed;

    // A realistic steady-state delta: one domain retargeted within the
    // tail month — the same shape `ingest_throughput` streams.
    let date = "2024-01".parse().expect("month parses");
    let base = DnsSnapshot::new(date);
    let mut variant = base.clone();
    variant.merge(
        DomainId(7),
        vec![u32::from(std::net::Ipv4Addr::new(203, 0, 113, 9))],
        vec![u128::from(std::net::Ipv6Addr::new(
            0x2600, 1, 0, 0, 0, 0, 0, 0x7,
        ))],
    );
    let delta = SnapshotDelta::diff(&base, &variant);

    let mut group = c.benchmark_group("replication_feed");
    // Publish: encode + retain + evict, at full retention.
    let feed = DeltaFeed::new();
    let mut epoch = 0u64;
    group.bench_function("publish", |b| {
        b.iter(|| {
            epoch += 1;
            feed.publish(epoch, &delta);
            black_box(epoch)
        })
    });
    // A caught-up follower's poll: bounds check only, nothing copied.
    group.bench_function("collect_caught_up", |b| {
        b.iter(|| black_box(feed.collect_since(epoch).deltas.len()))
    });
    // A far-behind follower's poll: a full SUB_BATCH of armored lines.
    group.bench_function("collect_full_batch", |b| {
        b.iter(|| {
            let batch = feed.collect_since(0);
            assert_eq!(batch.deltas.len(), SUB_BATCH);
            black_box(batch.current)
        })
    });
    group.finish();

    let total = 50_000usize;
    let start = Instant::now();
    for _ in 0..total {
        epoch += 1;
        feed.publish(epoch, &delta);
    }
    let publish_per_sec = total as f64 / start.elapsed().as_secs_f64();
    let collects = 2_000usize;
    let start = Instant::now();
    for _ in 0..collects {
        black_box(feed.collect_since(0).deltas.len());
    }
    let collect_per_sec = collects as f64 / start.elapsed().as_secs_f64();
    println!(
        "[replication] {publish_per_sec:.0} publishes/sec at full retention; \
         {collect_per_sec:.0} full-batch collects/sec ({SUB_BATCH} deltas each)"
    );
    c.record_value("replication_feed/publish_per_sec", publish_per_sec as u64);
    c.record_value(
        "replication_feed/full_batch_collects_per_sec",
        collect_per_sec as u64,
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_query_throughput, bench_ingest_throughput, bench_replication_feed
);
criterion_main!(benches);
