//! Substrate micro-benchmarks: the building blocks every experiment rides
//! on (trie operations, RIB lookups, ROV validation, scanning, world
//! generation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use sibling_bench::{bench_context, cached_snapshot_window, fresh_world, low_churn_world};
use sibling_core::{
    detect, BestMatchPolicy, DetectEngine, EngineConfig, PrefixDomainIndex, SimilarityMetric,
};
use sibling_dns::{LoadMode, SnapshotDelta, SnapshotFile, SnapshotStore};
use sibling_executor::{scoped_map, ThreadPool};
use sibling_net_types::Ipv4Prefix;
use sibling_ptrie::PatriciaTrie;
use sibling_scan::{ScanConfig, Scanner};
use sibling_store::WorldStore;

/// Patricia-trie insert + longest-prefix match (the PyTricia substitute).
fn bench_trie(c: &mut Criterion) {
    let prefixes: Vec<Ipv4Prefix> = (0..10_000u32)
        .map(|i| Ipv4Prefix::new(i << 14, 18 + (i % 7) as u8).unwrap())
        .collect();
    c.bench_function("ptrie_insert_10k", |b| {
        b.iter(|| {
            let mut trie = PatriciaTrie::new();
            for (i, p) in prefixes.iter().enumerate() {
                trie.insert(*p, i);
            }
            black_box(trie.len())
        })
    });
    let trie: PatriciaTrie<u32, usize> =
        prefixes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    c.bench_function("ptrie_lpm_10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for addr in (0..100_000u32).step_by(101) {
                if trie
                    .longest_match(addr.wrapping_mul(2_654_435_761))
                    .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// RIB longest-prefix matching over the generated announcements.
fn bench_rib_lookup(c: &mut Criterion) {
    let ctx = bench_context();
    let snap = ctx.snapshot(ctx.day0());
    let addrs: Vec<u32> = snap.ds_domains().flat_map(|(_, a)| a.v4.clone()).collect();
    println!("[§2.2] {} DS v4 addresses to map", addrs.len());
    c.bench_function("rib_lpm_ds_addresses", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for addr in &addrs {
                if ctx.world.rib().lookup(*addr).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
}

/// RFC 6811 validation over all announced prefixes (Fig. 18 inner loop).
fn bench_rov(c: &mut Criterion) {
    let ctx = bench_context();
    let table = ctx.world.roa_table(ctx.day0());
    println!("[fig18] {} ROAs at day 0", table.len());
    let announcements: Vec<_> = ctx
        .world
        .pods()
        .iter()
        .map(|p| (p.v4_announced, ctx.world.orgs()[p.v4_org as usize].v4_asn))
        .collect();
    c.bench_function("rov_validate_all_v4", |b| {
        b.iter(|| {
            let mut valid = 0usize;
            for (prefix, origin) in &announcements {
                if table.validate_v4(prefix, *origin) == sibling_rpki::RovState::Valid {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
}

/// ZMap-style scan over all DS addresses (Fig. 6 inner loop).
fn bench_scan(c: &mut Criterion) {
    let ctx = bench_context();
    let date = ctx.day0();
    let snap = ctx.snapshot(date);
    let mut v4: Vec<u32> = snap.ds_domains().flat_map(|(_, a)| a.v4.clone()).collect();
    let mut v6: Vec<u128> = snap.ds_domains().flat_map(|(_, a)| a.v6.clone()).collect();
    v4.sort_unstable();
    v4.dedup();
    v6.sort_unstable();
    v6.dedup();
    let deployment = ctx.world.deployment(date);
    let scanner = Scanner::new(ScanConfig::default());
    let report = scanner.scan(&deployment, &v4, &v6);
    println!(
        "[fig06] {} probes, {} v4 + {} v6 responsive, {:.1}s simulated at 50 kpps",
        report.probes_sent,
        report.v4.len(),
        report.v6.len(),
        report.duration_secs
    );
    c.bench_function("scan_14_ports_all_ds", |b| {
        b.iter(|| black_box(scanner.scan(&deployment, &v4, &v6)))
    });
}

/// The longitudinal sweep two ways, end to end.
///
/// * `per_date_serial` is the pre-engine architecture: each date is an
///   independent run that rebuilds the shared state (world generation =
///   domain interner + RIB + org tables, as a one-date-per-invocation
///   driver must), derives the month's snapshot and index, and runs the
///   serial reference `detect`.
/// * `engine_batch` is `DetectEngine::run_window`: shared state is built
///   once, then the window is walked in one pass — snapshots and indexes
///   per month, the interner/RIB archive/set arena reused throughout,
///   scoring sharded (and parallel with the `parallel` feature).
///
/// Also times the two scoring paths alone (`score/*`, identical indexes,
/// identical outputs) to isolate the counting-join + sharding win from
/// the batch-reuse win.
fn bench_batch_window(c: &mut Criterion) {
    let months = 6u64;
    {
        let world = fresh_world(2024);
        let day0 = world.config.end;
        let from = day0.add_months(-(months as i32 - 1));
        let archive = world.rib_archive();
        let mut engine = DetectEngine::default();
        let run = engine
            .run_window(from, day0, &archive, |d| Arc::new(world.snapshot(d)))
            .unwrap();
        println!(
            "[batch] {} months: {} pairs, {} distinct sets, {} dedup hits",
            run.stats.months, run.stats.total_pairs, run.stats.distinct_sets, run.stats.dedup_hits
        );
    }

    let mut group = c.benchmark_group("batch_window");
    group.bench_function("per_date_serial", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 0..months {
                // One-date-per-invocation: shared state is rebuilt.
                let world = fresh_world(2024);
                let date = world.config.end.add_months(-(k as i32));
                let snap = world.snapshot(date);
                let index = PrefixDomainIndex::build(&snap, world.rib());
                total += detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union).len();
            }
            black_box(total)
        })
    });
    group.bench_function("engine_batch", |b| {
        b.iter(|| {
            let world = fresh_world(2024);
            let day0 = world.config.end;
            let from = day0.add_months(-(months as i32 - 1));
            let archive = world.rib_archive();
            let mut engine = DetectEngine::default();
            let run = engine
                .run_window(from, day0, &archive, |d| Arc::new(world.snapshot(d)))
                .unwrap();
            black_box(run.stats.total_pairs)
        })
    });
    group.finish();

    // Scoring-only comparison over one shared index.
    let ctx = bench_context();
    let engine = DetectEngine::default();
    let snap = ctx.snapshot(ctx.day0());
    let index = engine.build_index(&snap, ctx.world.rib());
    let mut group = c.benchmark_group("score");
    group.bench_function("serial_reference", |b| {
        b.iter(|| {
            black_box(detect(
                &index,
                SimilarityMetric::Jaccard,
                BestMatchPolicy::Union,
            ))
        })
    });
    group.bench_function("engine_sharded", |b| {
        b.iter(|| black_box(engine.detect(&index)))
    });
    group.finish();
}

/// Churn-scaled incremental detection: the same multi-month window, once
/// with per-month full rebuilds (index + all shards rescored every
/// month, `incremental: false`) and once incrementally (snapshot deltas,
/// in-place index patching, dirty-shard rescoring). Snapshots come from
/// the persistent `target/snapshot-store/` cache (zone resolution runs
/// only the first time per checkout; the engine consumes the mapped
/// files zero-copy), so both variants measure engine work, not worldgen;
/// the printed churn rate shows how little of each month the incremental
/// path has to touch. Outputs are bit-identical (property-tested in
/// `sibling-core`); only the cost model differs.
fn bench_incremental_window(c: &mut Criterion) {
    let months = 24i32;
    let world = low_churn_world(2024);
    let day0 = world.config.end;
    let from = day0.add_months(-(months - 1));
    let dates = from.range_to(day0);
    let archive = world.rib_archive();
    let snaps: Vec<Arc<SnapshotFile>> =
        cached_snapshot_window("low-churn-small-2024", &world, from, day0);
    {
        let domains: usize = snaps.iter().map(|s| s.domain_count()).sum::<usize>() / snaps.len();
        let churn: usize = snaps
            .windows(2)
            .map(|w| SnapshotDelta::diff_sources(&w[0], &w[1]).churn())
            .sum::<usize>()
            / (snaps.len() - 1);
        println!(
            "[incr] {} months, ~{domains} domains/month, ~{churn} changed/month ({:.1}% turnover)",
            dates.len(),
            churn as f64 / domains as f64 * 100.0
        );
        let mut engine = DetectEngine::default();
        let run = engine
            .run_window(from, day0, &archive, |d| {
                snaps[d.months_since(&from).max(0) as usize].clone()
            })
            .unwrap();
        let (dirty, total): (usize, usize) = run.churn[1..]
            .iter()
            .fold((0, 0), |(d, t), c| (d + c.dirty_shards, t + c.total_shards));
        println!(
            "[incr] {} pairs; post-seed months rescored {dirty}/{total} shards ({:.1}%), {} sets recycled",
            run.stats.total_pairs,
            dirty as f64 / total.max(1) as f64 * 100.0,
            run.stats.recycled_sets
        );
    }
    let snapshot_of =
        |d: sibling_net_types::MonthDate| snaps[d.months_since(&from).max(0) as usize].clone();

    let mut group = c.benchmark_group("incremental_window");
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let mut engine = DetectEngine::new(EngineConfig {
                incremental: false,
                ..EngineConfig::default()
            });
            let run = engine
                .run_window(from, day0, &archive, snapshot_of)
                .unwrap();
            black_box(run.stats.total_pairs)
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut engine = DetectEngine::default();
            let run = engine
                .run_window(from, day0, &archive, snapshot_of)
                .unwrap();
            black_box(run.stats.total_pairs)
        })
    });
    group.finish();
}

/// Cross-month window parallelism, measured: the same cached 24-month
/// low-churn store window as `incremental_window`, run through the
/// window scheduler at 1/2/4/8 threads. At one thread every task runs
/// inline on the driver (the serial walk); with workers, snapshot
/// diffs, dirty-shard rescoring and per-month assembly of *different*
/// months overlap on the persistent pool. Output is bit-identical at
/// every thread count (property-tested in `sibling-core`; CI diffs the
/// CLI's stdout too) — only wall-clock changes. The acceptance bar is
/// ≥2x at 4 threads over 1 thread.
///
/// Also records the arena's lock-contention counter
/// (`SetArena::shard_wait_count`) for the 4-thread run into
/// `target/bench.json` — the sharded interner's health metric (expect
/// low counts: 64-way fan-out keeps concurrent interns apart) — plus
/// the machine's available parallelism, without which the `tN` series
/// cannot be interpreted: on a single-core box the best possible
/// outcome is near-parity (threads only add scheduling overhead), and
/// the speedup bar applies to machines with ≥ 4 cores.
fn bench_window_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("[window] machine parallelism: {cores} core(s)");
    c.record_value("window_parallel/available_parallelism", cores as u64);
    let months = 24i32;
    let world = low_churn_world(2024);
    let day0 = world.config.end;
    let from = day0.add_months(-(months - 1));
    let archive = world.rib_archive();
    let snaps: Vec<Arc<SnapshotFile>> =
        cached_snapshot_window("low-churn-small-2024", &world, from, day0);
    let snapshot_of =
        |d: sibling_net_types::MonthDate| snaps[d.months_since(&from).max(0) as usize].clone();

    let mut group = c.benchmark_group("window_parallel");
    for threads in [1usize, 2, 4, 8] {
        // The engine (and so its persistent pool) is constructed outside
        // the timed region: thread spawn/join is a one-time cost per
        // engine, and timing it per iteration would charge t4/t8 for
        // something t1 (no workers) never pays.
        let mut engine = DetectEngine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        });
        group.bench_function(format!("t{threads}"), |b| {
            b.iter(|| {
                let run = engine
                    .run_window(from, day0, &archive, snapshot_of)
                    .unwrap();
                black_box(run.stats.total_pairs)
            })
        });
    }
    group.finish();

    // Contention counter of one representative 4-thread window.
    let mut engine = DetectEngine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let run = engine
        .run_window(from, day0, &archive, snapshot_of)
        .unwrap();
    println!(
        "[window] 4 threads: {} pairs, {} arena shard waits over {} months",
        run.stats.total_pairs,
        engine.arena().shard_wait_count(),
        run.stats.months
    );
    c.record_value(
        "window_parallel/arena_shard_wait_count_t4",
        engine.arena().shard_wait_count(),
    );
}

/// The snapshot store's reason to exist, measured: producing one month
/// of input by full regeneration (zone construction + CNAME resolution +
/// routability filtering — what every process used to pay per month)
/// versus loading the exported file back (`mmap` + header/section
/// validation, and the plain-`read` fallback for comparison). The
/// store's acceptance bar is regenerate ≥ 10x slower than `store_mmap`.
/// A `materialize` variant adds `SnapshotView::to_snapshot` on top of
/// the load, bounding the cost of the owned-BTreeMap escape hatch.
fn bench_store_load(c: &mut Criterion) {
    let world = fresh_world(2024);
    let date = world.config.end;
    let files = cached_snapshot_window("store-load-small-2024", &world, date, date);
    let store = SnapshotStore::open(sibling_bench::snapshot_store_dir("store-load-small-2024"))
        .expect("bench store exists");
    println!(
        "[store] {} domains, {} KiB on disk, backing {:?}",
        files[0].domain_count(),
        files[0].byte_len() / 1024,
        files[0].backing()
    );
    let mut group = c.benchmark_group("store_load");
    group.bench_function("regenerate", |b| {
        b.iter(|| black_box(world.snapshot(date).domain_count()))
    });
    group.bench_function("store_mmap", |b| {
        b.iter(|| black_box(store.load(date).expect("stored").domain_count()))
    });
    group.bench_function("store_read", |b| {
        b.iter(|| {
            black_box(
                store
                    .load_with(date, LoadMode::Read)
                    .expect("stored")
                    .domain_count(),
            )
        })
    });
    group.bench_function("materialize", |b| {
        b.iter(|| {
            let file = store.load(date).expect("stored");
            black_box(file.view().to_snapshot().domain_count())
        })
    });
    group.finish();
}

/// The world store closes the gap the snapshot store left open: loading
/// the *non-snapshot* world state (the per-month RIB archive plus the
/// AS→org, hypergiant and ASdb tables) by full regeneration
/// (`World::generate` — what `batch --store` used to pay even with every
/// snapshot cached) versus mapping the exported `SIBWORLD` file back
/// (`mmap` + header/section validation + org-table materialization, and
/// the plain-`read` fallback for comparison). The acceptance bar is
/// regenerate ≥ 10x slower than `store_mmap`; the stub criterion records
/// every series into `target/bench.json`, so the `store_world/*` load
/// times land there alongside the other substrates.
fn bench_store_world(c: &mut Criterion) {
    let world = fresh_world(2024);
    let fingerprint = world.config.fingerprint();
    let dir = sibling_bench::snapshot_store_dir("world-store-small-2024");
    // (Re)write the cached world file when absent, stale-format, or
    // explicitly forced — stored worlds are a pure function of the
    // config baked into the label.
    if sibling_bench::force_regen() || WorldStore::open(&dir, Some(fingerprint)).is_err() {
        WorldStore::write(
            &dir,
            fingerprint,
            &world.rib_archive(),
            world.as_org(),
            world.asdb(),
            world.hg_cdn(),
        )
        .expect("write bench world store");
    }
    let stored = WorldStore::open(&dir, Some(fingerprint)).expect("bench world store exists");
    println!(
        "[store] world file: {} months, {} KiB on disk, backing {:?}",
        stored.months().len(),
        stored.byte_len() / 1024,
        stored.backing()
    );
    let mut group = c.benchmark_group("store_world");
    group.bench_function("regenerate", |b| {
        b.iter(|| {
            let world = fresh_world(2024);
            black_box(world.rib_archive().len())
        })
    });
    group.bench_function("store_mmap", |b| {
        b.iter(|| {
            let stored = WorldStore::open(&dir, Some(fingerprint)).expect("stored");
            black_box(stored.rib_archive().len())
        })
    });
    group.bench_function("store_read", |b| {
        b.iter(|| {
            let stored =
                WorldStore::open_with(&dir, Some(fingerprint), LoadMode::Read).expect("stored");
            black_box(stored.rib_archive().len())
        })
    });
    group.finish();
}

/// Dispatch cost of the two executor designs on small jobs: the
/// persistent pool (workers parked on a condvar, fed through a queue)
/// versus the previous per-call `std::thread::scope` spawning. The work
/// per item is tiny on purpose — the benchmark isolates what it costs to
/// *start* a parallel map, which is what the engine pays once per month
/// per window.
fn bench_pool_dispatch(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    let work = |_: usize, x: &u64| -> u64 {
        let mut acc = *x;
        for i in 0..32u64 {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7) ^ i;
        }
        acc
    };
    let threads = 4;
    let pool = ThreadPool::with_threads(threads);
    let mut group = c.benchmark_group("pool_dispatch");
    group.bench_function("persistent", |b| {
        b.iter(|| black_box(pool.map(&items, work)))
    });
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| black_box(scoped_map(threads, &items, work)))
    });
    group.finish();
}

/// World generation itself (the dataset substitute).
fn bench_worldgen(c: &mut Criterion) {
    c.bench_function("worldgen_small", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fresh_world(seed).pods().len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trie, bench_rib_lookup, bench_rov, bench_scan, bench_batch_window,
    bench_incremental_window, bench_window_parallel, bench_store_load, bench_store_world,
    bench_pool_dispatch, bench_worldgen
);
criterion_main!(benches);
