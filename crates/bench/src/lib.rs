//! Shared fixtures for the benchmark suite.
//!
//! Benchmarks run on the small world preset so each Criterion sample is
//! milliseconds; the experiment harness (`examples/full_reproduction.rs`)
//! is the paper-scale run. Every bench prints the series/rows the
//! corresponding paper artefact reports, so `cargo bench` regenerates the
//! evaluation's numbers alongside the timings.

use std::sync::OnceLock;

use sibling_analysis::AnalysisContext;
use sibling_worldgen::{World, WorldConfig};

/// The shared benchmark world (generated once per process).
pub fn bench_context() -> &'static AnalysisContext {
    static CTX: OnceLock<AnalysisContext> = OnceLock::new();
    CTX.get_or_init(|| AnalysisContext::new(World::generate(WorldConfig::test_small(2024))))
}

/// A fresh small world for benches that mutate or regenerate.
pub fn fresh_world(seed: u64) -> World {
    World::generate(WorldConfig::test_small(seed))
}

/// A small world whose month-over-month churn comes only from hosting
/// moves and address re-hashing, not from domains entering or leaving the
/// measurement (everyone active from day one, no single-month
/// appearances), with move rates at a quarter of the default presets.
/// Monthly turnover lands around 1% — still several times *above* the
/// steady-state regime the paper's later snapshots live in (§4.1 reports
/// only a few percent year-over-year prefix change), so the incremental
/// engine's low-churn claim is benchmarked conservatively.
pub fn low_churn_world(seed: u64) -> World {
    let mut config = WorldConfig::test_small(seed);
    config.active_at_start_share = 1.0;
    config.once_share = 0.0;
    config.consistent_share = 1.0;
    config.addr_rehash_monthly /= 4.0;
    config.joint_move_monthly /= 4.0;
    config.v4_only_move_monthly /= 4.0;
    config.v6_only_move_monthly /= 4.0;
    World::generate(config)
}
