//! Shared fixtures for the benchmark suite.
//!
//! Benchmarks run on the small world preset so each Criterion sample is
//! milliseconds; the experiment harness (`examples/full_reproduction.rs`)
//! is the paper-scale run. Every bench prints the series/rows the
//! corresponding paper artefact reports, so `cargo bench` regenerates the
//! evaluation's numbers alongside the timings.
//!
//! Snapshot-hungry benches go through [`cached_snapshot_window`]: monthly
//! snapshots are resolved once, exported to `target/snapshot-store/`, and
//! mapped back on every later `cargo bench` run — zone-resolution cost
//! leaves the benchmark setup path entirely. Set
//! `SIBLING_BENCH_FORCE_REGEN=1` to ignore and rewrite the cache.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use sibling_analysis::AnalysisContext;
use sibling_dns::{SnapshotFile, SnapshotStore};
use sibling_net_types::MonthDate;
use sibling_worldgen::{World, WorldConfig};

/// The shared benchmark world (generated once per process).
pub fn bench_context() -> &'static AnalysisContext {
    static CTX: OnceLock<AnalysisContext> = OnceLock::new();
    CTX.get_or_init(|| AnalysisContext::new(World::generate(WorldConfig::test_small(2024))))
}

/// A fresh small world for benches that mutate or regenerate.
pub fn fresh_world(seed: u64) -> World {
    World::generate(WorldConfig::test_small(seed))
}

/// A small world whose month-over-month churn comes only from hosting
/// moves and address re-hashing, not from domains entering or leaving the
/// measurement (everyone active from day one, no single-month
/// appearances), with move rates at a quarter of the default presets.
/// Monthly turnover lands around 1% — still several times *above* the
/// steady-state regime the paper's later snapshots live in (§4.1 reports
/// only a few percent year-over-year prefix change), so the incremental
/// engine's low-churn claim is benchmarked conservatively.
pub fn low_churn_world(seed: u64) -> World {
    let mut config = WorldConfig::test_small(seed);
    config.active_at_start_share = 1.0;
    config.once_share = 0.0;
    config.consistent_share = 1.0;
    config.addr_rehash_monthly /= 4.0;
    config.joint_move_monthly /= 4.0;
    config.v4_only_move_monthly /= 4.0;
    config.v6_only_move_monthly /= 4.0;
    World::generate(config)
}

/// The persistent benchmark snapshot cache:
/// `<target dir>/snapshot-store/<label>`. Honors `CARGO_TARGET_DIR`;
/// otherwise walks up from the working directory (cargo runs benches in
/// the *package* root) to the workspace root, marked by `Cargo.lock` —
/// the same resolution the vendored criterion stub uses for
/// `bench.json`.
pub fn snapshot_store_dir(label: &str) -> PathBuf {
    let target = if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        PathBuf::from(dir)
    } else {
        let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
        loop {
            if dir.join("Cargo.lock").exists() {
                break dir.join("target");
            }
            if !dir.pop() {
                break PathBuf::from("target");
            }
        }
    };
    target.join("snapshot-store").join(label)
}

/// Whether the `SIBLING_BENCH_FORCE_REGEN` escape hatch asks benches to
/// ignore the on-disk snapshot cache and regenerate everything.
pub fn force_regen() -> bool {
    std::env::var_os("SIBLING_BENCH_FORCE_REGEN").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Opens (or populates) the cached store under `label` for the inclusive
/// window `from..=to` of `world`, and loads the months back as mapped
/// snapshot files. The first run per checkout pays zone resolution and
/// writes `target/snapshot-store/<label>/`; every later `cargo bench`
/// maps the files in milliseconds. `SIBLING_BENCH_FORCE_REGEN=1`
/// rewrites the cache.
///
/// The caller must pass a `label` unique to the world's config and seed —
/// stored snapshots are a pure function of those, so a stale cache can
/// only exist if a config change forgets to change its label (bake the
/// seed and preset into it).
pub fn cached_snapshot_window(
    label: &str,
    world: &World,
    from: MonthDate,
    to: MonthDate,
) -> Vec<Arc<SnapshotFile>> {
    let store = SnapshotStore::create(snapshot_store_dir(label)).expect("create bench store");
    world
        .export_snapshots(&store, from, to, force_regen())
        .expect("export bench window");
    from.range_to(to)
        .into_iter()
        .map(|date| store.load(date).expect("load cached snapshot"))
        .collect()
}
