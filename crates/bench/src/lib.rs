//! Shared fixtures for the benchmark suite.
//!
//! Benchmarks run on the small world preset so each Criterion sample is
//! milliseconds; the experiment harness (`examples/full_reproduction.rs`)
//! is the paper-scale run. Every bench prints the series/rows the
//! corresponding paper artefact reports, so `cargo bench` regenerates the
//! evaluation's numbers alongside the timings.

use std::sync::OnceLock;

use sibling_analysis::AnalysisContext;
use sibling_worldgen::{World, WorldConfig};

/// The shared benchmark world (generated once per process).
pub fn bench_context() -> &'static AnalysisContext {
    static CTX: OnceLock<AnalysisContext> = OnceLock::new();
    CTX.get_or_init(|| AnalysisContext::new(World::generate(WorldConfig::test_small(2024))))
}

/// A fresh small world for benches that mutate or regenerate.
pub fn fresh_world(seed: u64) -> World {
    World::generate(WorldConfig::test_small(seed))
}
