//! Cross-family attribute transfer over sibling prefixes.
//!
//! The paper's motivating applications (§1, §6): "network operators might
//! want to prioritize, filter, or block traffic/domains of IPv4 prefixes,
//! and identified sibling prefixes allow to do this for the IPv6
//! counterpart as well … One example are geolocation database providers
//! using sibling prefixes to transfer geolocation information from IPv4
//! to IPv6 … the adaption of IPv4 spam blocklists to IPv6, which closes
//! the backdoor for spammers to switch to IPv6."
//!
//! [`transfer_v4_to_v6`] implements the generic mechanism: given a
//! sibling pair list and an IPv4-keyed attribute database (geolocation
//! labels, blocklist verdicts, routing policies — any `Clone + Eq`
//! value), it derives an IPv6-keyed database. Each derived entry carries
//! the *confidence* (the pair's similarity) and conflicts between
//! multiple IPv4 sources are resolved deterministically in favour of the
//! highest-confidence source. The symmetric direction is provided by
//! [`transfer_v6_to_v4`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use sibling_core::SiblingPair;
use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};
use sibling_ptrie::PatriciaTrie;

/// A derived attribute entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived<T> {
    /// The transferred attribute value.
    pub value: T,
    /// Transfer confidence: the similarity of the sibling pair used,
    /// in `[0, 1]`.
    pub confidence: f64,
    /// The source prefix the value came from (as a display string, so the
    /// type is family-agnostic).
    pub source: String,
}

/// An attribute database keyed by IPv4 prefixes, with longest-prefix
/// lookup (so `/28` sub-prefixes inherit a `/24` entry, as geolocation
/// and blocklist databases behave).
#[derive(Default, Clone)]
pub struct V4Db<T> {
    trie: PatriciaTrie<u32, T>,
}

impl<T: Clone> V4Db<T> {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self {
            trie: PatriciaTrie::new(),
        }
    }

    /// Inserts an entry.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) {
        self.trie.insert(prefix, value);
    }

    /// The most specific entry covering `prefix`.
    pub fn lookup(&self, prefix: &Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        self.trie.longest_covering(prefix)
    }

    /// The most specific entry containing an address.
    pub fn lookup_addr(&self, addr: u32) -> Option<(Ipv4Prefix, &T)> {
        self.trie.longest_match(addr)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

/// The IPv6-keyed counterpart (usually the *output* of a transfer).
#[derive(Default, Clone)]
pub struct V6Db<T> {
    trie: PatriciaTrie<u128, T>,
}

impl<T: Clone> V6Db<T> {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self {
            trie: PatriciaTrie::new(),
        }
    }

    /// Inserts an entry.
    pub fn insert(&mut self, prefix: Ipv6Prefix, value: T) {
        self.trie.insert(prefix, value);
    }

    /// The most specific entry covering `prefix`.
    pub fn lookup(&self, prefix: &Ipv6Prefix) -> Option<(Ipv6Prefix, &T)> {
        self.trie.longest_covering(prefix)
    }

    /// The most specific entry containing an address.
    pub fn lookup_addr(&self, addr: u128) -> Option<(Ipv6Prefix, &T)> {
        self.trie.longest_match(addr)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Iterates over all entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv6Prefix, &T)> + '_ {
        self.trie.iter()
    }
}

/// Transfer options.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Pairs below this similarity are not used (the paper recommends
    /// lists "with high Jaccard values" for cross-family adaptation).
    pub min_confidence: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            min_confidence: 0.5,
        }
    }
}

/// Derives an IPv6 attribute database from an IPv4 one via sibling pairs.
///
/// For every pair whose similarity clears the threshold, the IPv4 side is
/// looked up (longest covering entry) and the value is proposed for the
/// IPv6 side. Conflicting proposals for the same IPv6 prefix resolve to
/// the highest confidence, breaking ties by source prefix order so the
/// result is deterministic.
pub fn transfer_v4_to_v6<T: Clone + Eq>(
    pairs: &[SiblingPair],
    source: &V4Db<T>,
    config: &TransferConfig,
) -> BTreeMap<Ipv6Prefix, Derived<T>> {
    let mut out: BTreeMap<Ipv6Prefix, Derived<T>> = BTreeMap::new();
    for pair in pairs {
        let confidence = pair.similarity.to_f64();
        if confidence < config.min_confidence {
            continue;
        }
        let Some((src_prefix, value)) = source.lookup(&pair.v4) else {
            continue;
        };
        let candidate = Derived {
            value: value.clone(),
            confidence,
            source: src_prefix.to_string(),
        };
        match out.get(&pair.v6) {
            Some(existing)
                if existing.confidence > candidate.confidence
                    || (existing.confidence == candidate.confidence
                        && existing.source <= candidate.source) => {}
            _ => {
                out.insert(pair.v6, candidate);
            }
        }
    }
    out
}

/// The symmetric direction: derives an IPv4 database from an IPv6 one.
pub fn transfer_v6_to_v4<T: Clone + Eq>(
    pairs: &[SiblingPair],
    source: &V6Db<T>,
    config: &TransferConfig,
) -> BTreeMap<Ipv4Prefix, Derived<T>> {
    let mut out: BTreeMap<Ipv4Prefix, Derived<T>> = BTreeMap::new();
    for pair in pairs {
        let confidence = pair.similarity.to_f64();
        if confidence < config.min_confidence {
            continue;
        }
        let Some((src_prefix, value)) = source.lookup(&pair.v6) else {
            continue;
        };
        let candidate = Derived {
            value: value.clone(),
            confidence,
            source: src_prefix.to_string(),
        };
        match out.get(&pair.v4) {
            Some(existing)
                if existing.confidence > candidate.confidence
                    || (existing.confidence == candidate.confidence
                        && existing.source <= candidate.source) => {}
            _ => {
                out.insert(pair.v4, candidate);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibling_core::Ratio;

    fn pair(v4: &str, v6: &str, num: u64, den: u64) -> SiblingPair {
        SiblingPair {
            v4: v4.parse().unwrap(),
            v6: v6.parse().unwrap(),
            similarity: Ratio::new(num, den),
            shared_domains: num,
            v4_domains: den,
            v6_domains: den,
        }
    }

    #[test]
    fn transfers_with_confidence() {
        let mut db = V4Db::new();
        db.insert("203.0.0.0/16".parse().unwrap(), "DE");
        let pairs = vec![pair("203.0.2.0/24", "2600:1::/48", 1, 1)];
        let derived = transfer_v4_to_v6(&pairs, &db, &TransferConfig::default());
        let entry = &derived[&"2600:1::/48".parse().unwrap()];
        assert_eq!(entry.value, "DE");
        assert_eq!(entry.confidence, 1.0);
        assert_eq!(entry.source, "203.0.0.0/16");
    }

    #[test]
    fn low_confidence_pairs_are_skipped() {
        let mut db = V4Db::new();
        db.insert("203.0.2.0/24".parse().unwrap(), "DE");
        let pairs = vec![pair("203.0.2.0/24", "2600:1::/48", 1, 4)];
        let derived = transfer_v4_to_v6(&pairs, &db, &TransferConfig::default());
        assert!(derived.is_empty());
        let lax = TransferConfig {
            min_confidence: 0.2,
        };
        let derived = transfer_v4_to_v6(&pairs, &db, &lax);
        assert_eq!(derived.len(), 1);
        assert!((derived.values().next().unwrap().confidence - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conflicts_resolve_to_highest_confidence() {
        let mut db = V4Db::new();
        db.insert("203.0.2.0/24".parse().unwrap(), "DE");
        db.insert("198.51.7.0/24".parse().unwrap(), "FR");
        let pairs = vec![
            pair("203.0.2.0/24", "2600:1::/48", 1, 2),
            pair("198.51.7.0/24", "2600:1::/48", 9, 10),
        ];
        let derived = transfer_v4_to_v6(&pairs, &db, &TransferConfig::default());
        let entry = &derived[&"2600:1::/48".parse().unwrap()];
        assert_eq!(entry.value, "FR", "higher-confidence source must win");
        // Order independence: reversed input gives the same result.
        let reversed: Vec<_> = pairs.into_iter().rev().collect();
        let derived2 = transfer_v4_to_v6(&reversed, &db, &TransferConfig::default());
        assert_eq!(derived2[&"2600:1::/48".parse().unwrap()].value, "FR");
    }

    #[test]
    fn unknown_v4_prefixes_transfer_nothing() {
        let db: V4Db<&str> = V4Db::new();
        let pairs = vec![pair("203.0.2.0/24", "2600:1::/48", 1, 1)];
        assert!(transfer_v4_to_v6(&pairs, &db, &TransferConfig::default()).is_empty());
    }

    #[test]
    fn blocklist_round_trip_v6_to_v4() {
        // The reverse direction: an IPv6 blocklist entry closes the v4 door.
        let mut db = V6Db::new();
        db.insert("2600:1::/48".parse().unwrap(), true);
        let pairs = vec![pair("203.0.2.0/24", "2600:1::/48", 1, 1)];
        let derived = transfer_v6_to_v4(&pairs, &db, &TransferConfig::default());
        assert!(derived[&"203.0.2.0/24".parse().unwrap()].value);
    }

    #[test]
    fn longest_covering_semantics_in_lookup() {
        let mut db = V4Db::new();
        db.insert("203.0.0.0/16".parse().unwrap(), "country");
        db.insert("203.0.2.0/24".parse().unwrap(), "city");
        // A /28 inside the /24 inherits the more specific entry.
        let (src, v) = db.lookup(&"203.0.2.16/28".parse().unwrap()).unwrap();
        assert_eq!(*v, "city");
        assert_eq!(src.to_string(), "203.0.2.0/24");
        // A /20 outside the /24 only sees the /16.
        let (_, v) = db.lookup(&"203.0.16.0/20".parse().unwrap()).unwrap();
        assert_eq!(*v, "country");
    }
}
