//! AS → organization mapping with sibling-AS merging.

use std::collections::BTreeMap;

use sibling_net_types::{Asn, MonthDate};

/// A dense organization identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrgId(pub u32);

/// Which upstream mapping produced an answer. The paper uses CAIDA's
/// dataset for analyses before October 2022 and the Chen et al. (PAM 2023)
/// dataset from October 2022 onward (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingEra {
    /// CAIDA AS-to-organization mapping (pre 2022-10).
    Caida,
    /// Chen et al. improved sibling inference (2022-10 onward).
    ChenEtAl,
}

impl MappingEra {
    /// The era in effect for analyses dated `date`.
    pub fn for_date(date: MonthDate) -> MappingEra {
        if date < MonthDate::new(2022, 10) {
            MappingEra::Caida
        } else {
            MappingEra::ChenEtAl
        }
    }
}

/// One era's AS → organization table.
///
/// Organizations are identified by [`OrgId`] and carry a display name;
/// *sibling ASes* are simply ASes mapping to the same `OrgId`.
#[derive(Debug, Default, Clone)]
pub struct AsOrgMap {
    by_asn: BTreeMap<Asn, OrgId>,
    names: BTreeMap<OrgId, String>,
}

impl AsOrgMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization name (idempotent on id).
    pub fn add_org(&mut self, id: OrgId, name: &str) {
        self.names.insert(id, name.to_string());
    }

    /// Maps `asn` to organization `org`.
    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        self.by_asn.insert(asn, org);
    }

    /// The organization of `asn`, if known.
    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.by_asn.get(&asn).copied()
    }

    /// The display name of `org`, if registered.
    pub fn org_name(&self, org: OrgId) -> Option<&str> {
        self.names.get(&org).map(String::as_str)
    }

    /// Whether two ASNs are sibling ASes (same organization). Unknown ASNs
    /// are never siblings of anything, including themselves — except that
    /// the identical ASN is trivially the same organization.
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        if a == b {
            return true;
        }
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All ASNs of `org`, in ascending order.
    pub fn siblings_of(&self, org: OrgId) -> Vec<Asn> {
        self.by_asn
            .iter()
            .filter(|(_, o)| **o == org)
            .map(|(a, _)| *a)
            .collect()
    }

    /// All `(asn, org)` assignments in ascending ASN order — the
    /// serialization walk of the zero-copy world store.
    pub fn assignments(&self) -> impl Iterator<Item = (Asn, OrgId)> + '_ {
        self.by_asn.iter().map(|(a, o)| (*a, *o))
    }

    /// All registered `(org, name)` pairs in ascending org order.
    pub fn org_names(&self) -> impl Iterator<Item = (OrgId, &str)> + '_ {
        self.names.iter().map(|(o, n)| (*o, n.as_str()))
    }

    /// Number of registered organization names.
    pub fn org_count(&self) -> usize {
        self.names.len()
    }

    /// Number of mapped ASNs.
    pub fn len(&self) -> usize {
        self.by_asn.len()
    }

    /// Whether no ASNs are mapped.
    pub fn is_empty(&self) -> bool {
        self.by_asn.is_empty()
    }
}

/// The era-switching source: CAIDA before 2022-10, Chen et al. after.
#[derive(Debug, Default, Clone)]
pub struct AsOrgSource {
    caida: AsOrgMap,
    chen: AsOrgMap,
}

impl AsOrgSource {
    /// Creates a source from the two era tables.
    pub fn new(caida: AsOrgMap, chen: AsOrgMap) -> Self {
        Self { caida, chen }
    }

    /// The table to use for an analysis dated `date`.
    pub fn map_for(&self, date: MonthDate) -> &AsOrgMap {
        match MappingEra::for_date(date) {
            MappingEra::Caida => &self.caida,
            MappingEra::ChenEtAl => &self.chen,
        }
    }

    /// Direct access to a specific era's table.
    pub fn map_for_era(&self, era: MappingEra) -> &AsOrgMap {
        match era {
            MappingEra::Caida => &self.caida,
            MappingEra::ChenEtAl => &self.chen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_switch_is_october_2022() {
        assert_eq!(
            MappingEra::for_date(MonthDate::new(2022, 9)),
            MappingEra::Caida
        );
        assert_eq!(
            MappingEra::for_date(MonthDate::new(2022, 10)),
            MappingEra::ChenEtAl
        );
        assert_eq!(
            MappingEra::for_date(MonthDate::new(2020, 9)),
            MappingEra::Caida
        );
    }

    #[test]
    fn sibling_as_semantics() {
        let mut m = AsOrgMap::new();
        m.add_org(OrgId(0), "ExampleNet");
        m.assign(Asn(100), OrgId(0));
        m.assign(Asn(200), OrgId(0));
        m.assign(Asn(300), OrgId(1));
        assert!(m.same_org(Asn(100), Asn(200)));
        assert!(!m.same_org(Asn(100), Asn(300)));
        assert!(m.same_org(Asn(100), Asn(100)));
        // Unknown ASN equal to itself is still "same org".
        assert!(m.same_org(Asn(999), Asn(999)));
        assert!(!m.same_org(Asn(999), Asn(100)));
        assert_eq!(m.siblings_of(OrgId(0)), vec![Asn(100), Asn(200)]);
        assert_eq!(m.org_name(OrgId(0)), Some("ExampleNet"));
    }

    #[test]
    fn source_selects_era_table() {
        let mut caida = AsOrgMap::new();
        caida.assign(Asn(1), OrgId(10));
        let mut chen = AsOrgMap::new();
        chen.assign(Asn(1), OrgId(20));
        let src = AsOrgSource::new(caida, chen);
        assert_eq!(
            src.map_for(MonthDate::new(2021, 1)).org_of(Asn(1)),
            Some(OrgId(10))
        );
        assert_eq!(
            src.map_for(MonthDate::new(2023, 1)).org_of(Asn(1)),
            Some(OrgId(20))
        );
    }
}
