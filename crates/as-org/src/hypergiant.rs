//! Hypergiant and CDN organization lists (§2.4, §4.7).
//!
//! The paper classifies sibling prefixes by whether both prefixes belong to
//! one of 24 publicly known hypergiant/CDN organizations (Fig. 17 and
//! Appendix A.3); everything else falls into the "non-CDN-HG" bucket.

use std::collections::BTreeMap;

/// Whether an organization appears on the hypergiant list, the CDN list,
/// both, or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HgCdnClass {
    /// On the hypergiant list (Böttger et al. / Gigis et al.).
    Hypergiant,
    /// On the CDN list (CDN Planet).
    Cdn,
    /// On both lists.
    Both,
    /// Neither — the paper's "non-CDN-HG" bucket.
    Other,
}

impl HgCdnClass {
    /// Whether the organization belongs to the HG/CDN universe at all.
    pub fn is_hg_or_cdn(&self) -> bool {
        !matches!(self, HgCdnClass::Other)
    }
}

/// The lookup table from organization name to HG/CDN class.
#[derive(Debug, Clone, Default)]
pub struct HgCdnList {
    by_name: BTreeMap<String, HgCdnClass>,
}

impl HgCdnList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical list: the 24 organizations named in the paper's HG/CDN
    /// figures, with their class.
    pub fn canonical() -> Self {
        let mut list = Self::new();
        // Hypergiants that also operate CDNs.
        for name in [
            "Amazon",
            "Microsoft",
            "Akamai",
            "Google",
            "Alibaba",
            "Cloudflare",
            "Facebook",
            "Apple",
        ] {
            list.add(name, HgCdnClass::Both);
        }
        // Primarily CDN operators.
        for name in [
            "GoDaddy",
            "Incapsula",
            "CDN77",
            "Edgecast",
            "Fastly",
            "Rackspace",
            "Internap",
            "Lumen",
        ] {
            list.add(name, HgCdnClass::Cdn);
        }
        // Primarily hypergiants / large eyeball-facing networks on the list.
        for name in [
            "Leaseweb", "KPN", "Yahoo", "Netflix", "Telenor", "NTT", "Telstra", "Telin",
        ] {
            list.add(name, HgCdnClass::Hypergiant);
        }
        list
    }

    /// Adds or replaces an entry.
    pub fn add(&mut self, org_name: &str, class: HgCdnClass) {
        self.by_name.insert(org_name.to_string(), class);
    }

    /// The class of `org_name` ([`HgCdnClass::Other`] when unlisted).
    pub fn classify(&self, org_name: &str) -> HgCdnClass {
        self.by_name
            .get(org_name)
            .copied()
            .unwrap_or(HgCdnClass::Other)
    }

    /// Whether `org_name` is a listed hypergiant or CDN.
    pub fn is_hg_cdn(&self, org_name: &str) -> bool {
        self.classify(org_name).is_hg_or_cdn()
    }

    /// All listed organization names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.by_name.keys().map(String::as_str)
    }

    /// All `(name, class)` entries in ascending name order — the
    /// serialization walk of the zero-copy world store.
    pub fn entries(&self) -> impl Iterator<Item = (&str, HgCdnClass)> + '_ {
        self.by_name.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_has_24_orgs() {
        let list = HgCdnList::canonical();
        assert_eq!(list.len(), 24);
        assert!(list.is_hg_cdn("Amazon"));
        assert!(list.is_hg_cdn("Telin"));
        assert!(!list.is_hg_cdn("Some Random ISP"));
    }

    #[test]
    fn classes_are_as_registered() {
        let list = HgCdnList::canonical();
        assert_eq!(list.classify("Google"), HgCdnClass::Both);
        assert_eq!(list.classify("Fastly"), HgCdnClass::Cdn);
        assert_eq!(list.classify("Netflix"), HgCdnClass::Hypergiant);
        assert_eq!(list.classify("nobody"), HgCdnClass::Other);
        assert!(!HgCdnClass::Other.is_hg_or_cdn());
    }

    #[test]
    fn names_sorted() {
        let list = HgCdnList::canonical();
        let names: Vec<_> = list.names().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
