//! ASdb business-type classification (§2.5, §4.6).

use std::collections::BTreeMap;

use sibling_net_types::Asn;

/// The 17 ASdb business categories as they appear in the paper's
/// business-type figures (Figs. 16, 20, 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BusinessType {
    Agriculture,
    Education,
    Entertainment,
    Finance,
    Government,
    Health,
    ComputerAndIt,
    Manufacturing,
    Media,
    Nonprofits,
    Other,
    RealEstate,
    Retail,
    Service,
    Shipment,
    Travel,
    Utilities,
}

impl BusinessType {
    /// All categories, in the order the paper's figures use.
    pub const ALL: [BusinessType; 17] = [
        BusinessType::Agriculture,
        BusinessType::Education,
        BusinessType::Entertainment,
        BusinessType::Finance,
        BusinessType::Government,
        BusinessType::Health,
        BusinessType::ComputerAndIt,
        BusinessType::Manufacturing,
        BusinessType::Media,
        BusinessType::Nonprofits,
        BusinessType::Other,
        BusinessType::RealEstate,
        BusinessType::Retail,
        BusinessType::Service,
        BusinessType::Shipment,
        BusinessType::Travel,
        BusinessType::Utilities,
    ];

    /// The display label used on figure axes.
    pub fn label(&self) -> &'static str {
        match self {
            BusinessType::Agriculture => "Agriculture",
            BusinessType::Education => "Education",
            BusinessType::Entertainment => "Entertainment",
            BusinessType::Finance => "Finance",
            BusinessType::Government => "Government",
            BusinessType::Health => "Health",
            BusinessType::ComputerAndIt => "IT",
            BusinessType::Manufacturing => "Manufacturing",
            BusinessType::Media => "Media",
            BusinessType::Nonprofits => "Nonprofits",
            BusinessType::Other => "Other",
            BusinessType::RealEstate => "Real Estate",
            BusinessType::Retail => "Retail",
            BusinessType::Service => "Service",
            BusinessType::Shipment => "Shipment",
            BusinessType::Travel => "Travel",
            BusinessType::Utilities => "Utilities",
        }
    }
}

/// An ASdb snapshot: each AS maps to one or more business categories.
#[derive(Debug, Default, Clone)]
pub struct AsdbDataset {
    by_asn: BTreeMap<Asn, Vec<BusinessType>>,
}

impl AsdbDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the categories for `asn` (sorted, deduplicated).
    pub fn assign(&mut self, asn: Asn, mut types: Vec<BusinessType>) {
        types.sort_unstable();
        types.dedup();
        self.by_asn.insert(asn, types);
    }

    /// The categories of `asn`, if classified.
    pub fn types_of(&self, asn: Asn) -> Option<&[BusinessType]> {
        self.by_asn.get(&asn).map(Vec::as_slice)
    }

    /// The category of `asn` if it maps to exactly one — the filter used
    /// for the main business-type analysis ("around 80% of all the
    /// prefixes", §4.6).
    pub fn single_type_of(&self, asn: Asn) -> Option<BusinessType> {
        match self.types_of(asn) {
            Some([t]) => Some(*t),
            _ => None,
        }
    }

    /// Share of classified ASes mapping to a single category.
    pub fn single_type_share(&self) -> f64 {
        if self.by_asn.is_empty() {
            return 0.0;
        }
        let singles = self.by_asn.values().filter(|v| v.len() == 1).count();
        singles as f64 / self.by_asn.len() as f64
    }

    /// All `(asn, categories)` entries in ascending ASN order — the
    /// serialization walk of the zero-copy world store.
    pub fn entries(&self) -> impl Iterator<Item = (Asn, &[BusinessType])> + '_ {
        self.by_asn.iter().map(|(a, t)| (*a, t.as_slice()))
    }

    /// Number of classified ASes.
    pub fn len(&self) -> usize {
        self.by_asn.len()
    }

    /// Whether no AS is classified.
    pub fn is_empty(&self) -> bool {
        self.by_asn.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_categories() {
        assert_eq!(BusinessType::ALL.len(), 17);
        let mut labels: Vec<_> = BusinessType::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 17, "labels must be distinct");
    }

    #[test]
    fn single_type_filter() {
        let mut db = AsdbDataset::new();
        db.assign(Asn(1), vec![BusinessType::ComputerAndIt]);
        db.assign(
            Asn(2),
            vec![BusinessType::ComputerAndIt, BusinessType::Media],
        );
        assert_eq!(db.single_type_of(Asn(1)), Some(BusinessType::ComputerAndIt));
        assert_eq!(db.single_type_of(Asn(2)), None);
        assert_eq!(db.single_type_of(Asn(3)), None);
        assert!((db.single_type_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn assign_dedups() {
        let mut db = AsdbDataset::new();
        db.assign(
            Asn(1),
            vec![
                BusinessType::Media,
                BusinessType::ComputerAndIt,
                BusinessType::Media,
            ],
        );
        assert_eq!(
            db.types_of(Asn(1)).unwrap(),
            &[BusinessType::ComputerAndIt, BusinessType::Media]
        );
    }
}
