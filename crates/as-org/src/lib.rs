//! AS-to-organization datasets (§2.3–§2.5 of the paper).
//!
//! Three datasets are modelled:
//!
//! * **AS → organization mapping** with *sibling-AS* semantics: ASes
//!   registered under the same organization name are merged when deciding
//!   whether the IPv4 and IPv6 origin ASes of a sibling prefix pair belong
//!   to the "same organization" (§4.5). The paper uses CAIDA's dataset
//!   before October 2022 and the Chen et al. dataset afterwards;
//!   [`AsOrgSource`] reproduces that era switch.
//! * **ASdb business types** (§2.5, §4.6): each AS maps to one or more of
//!   17 business categories; ~80% of sibling-prefix origin ASes map to a
//!   single category, and analyses filter on that.
//! * **Hypergiant and CDN lists** (§2.4, §4.7): the 24 named organizations
//!   of Fig. 17 plus the non-CDN-HG bucket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asdb;
mod hypergiant;
mod mapping;

pub use asdb::{AsdbDataset, BusinessType};
pub use hypergiant::{HgCdnClass, HgCdnList};
pub use mapping::{AsOrgMap, AsOrgSource, MappingEra, OrgId};
