//! Monthly RPKI archive, mirroring the RIR snapshot FTP layout.

use std::collections::BTreeMap;
use std::sync::Arc;

use sibling_net_types::MonthDate;

use crate::roa::RoaTable;

/// Monthly [`RoaTable`] snapshots from September 2020 to September 2024
/// (§2.6 downloads "RPKI data of all five RIRs … for every month").
#[derive(Default, Clone)]
pub struct RpkiArchive {
    snapshots: BTreeMap<MonthDate, Arc<RoaTable>>,
}

impl RpkiArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the combined five-RIR table for `date`.
    pub fn insert(&mut self, date: MonthDate, table: RoaTable) {
        self.snapshots.insert(date, Arc::new(table));
    }

    /// The table at exactly `date`.
    pub fn at(&self, date: MonthDate) -> Option<Arc<RoaTable>> {
        self.snapshots.get(&date).cloned()
    }

    /// The most recent table at or before `date`.
    pub fn at_or_before(&self, date: MonthDate) -> Option<Arc<RoaTable>> {
        self.snapshots
            .range(..=date)
            .next_back()
            .map(|(_, t)| t.clone())
    }

    /// All snapshot dates in order.
    pub fn dates(&self) -> impl Iterator<Item = MonthDate> + '_ {
        self.snapshots.keys().copied()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roa::{Roa, RovState};
    use sibling_net_types::{AnyPrefix, Asn, Ipv4Prefix};

    #[test]
    fn archive_round_trip() {
        let mut arch = RpkiArchive::new();
        let mut table = RoaTable::new();
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        table.add(Roa::new(AnyPrefix::V4(p), 16, Asn(64500)).unwrap());
        arch.insert(MonthDate::new(2022, 1), table);
        assert_eq!(arch.len(), 1);
        let t = arch.at(MonthDate::new(2022, 1)).unwrap();
        let q: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert_eq!(t.validate_v4(&q, Asn(64500)), RovState::Valid);
        assert!(arch.at(MonthDate::new(2022, 2)).is_none());
        assert!(arch.at_or_before(MonthDate::new(2023, 1)).is_some());
        assert!(arch.at_or_before(MonthDate::new(2021, 12)).is_none());
    }
}
