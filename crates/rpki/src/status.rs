//! Joint ROV status of a sibling prefix pair (Fig. 18 categories).

use crate::roa::RovState;

/// The six joint categories the paper plots in Fig. 18, ordered from the
/// strongest to the weakest protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PairRovStatus {
    /// Both prefixes have a valid ROV state.
    BothValid,
    /// One valid, the other not found in the RPKI.
    ValidNotFound,
    /// Conflicting: one valid, the other invalid.
    ValidInvalid,
    /// One invalid, the other not found.
    InvalidNotFound,
    /// Both invalid.
    BothInvalid,
    /// Neither prefix is covered by any ROA.
    BothNotFound,
}

impl PairRovStatus {
    /// Classifies a pair from its two per-prefix states. The
    /// classification is symmetric in its arguments.
    pub fn from_states(a: RovState, b: RovState) -> PairRovStatus {
        use RovState::*;
        match (a.min(b), a.max(b)) {
            (Valid, Valid) => PairRovStatus::BothValid,
            (Valid, NotFound) => PairRovStatus::ValidNotFound,
            (Valid, Invalid) => PairRovStatus::ValidInvalid,
            (Invalid, NotFound) => PairRovStatus::InvalidNotFound,
            (Invalid, Invalid) => PairRovStatus::BothInvalid,
            (NotFound, NotFound) => PairRovStatus::BothNotFound,
            // `min`/`max` on the derived order (Valid < Invalid < NotFound)
            // make the above patterns exhaustive.
            _ => unreachable!("min/max normalisation covers all cases"),
        }
    }

    /// Whether at least one prefix of the pair has a valid ROV state —
    /// the headline "over 60% of sibling prefixes" statistic.
    pub fn at_least_one_valid(&self) -> bool {
        matches!(
            self,
            PairRovStatus::BothValid | PairRovStatus::ValidNotFound | PairRovStatus::ValidInvalid
        )
    }

    /// Whether the pair has conflicting states (valid + invalid), the
    /// resilience hazard §4.8 highlights.
    pub fn is_conflicting(&self) -> bool {
        matches!(self, PairRovStatus::ValidInvalid)
    }

    /// All categories in plot order.
    pub const ALL: [PairRovStatus; 6] = [
        PairRovStatus::BothValid,
        PairRovStatus::ValidNotFound,
        PairRovStatus::ValidInvalid,
        PairRovStatus::InvalidNotFound,
        PairRovStatus::BothInvalid,
        PairRovStatus::BothNotFound,
    ];

    /// The display label used in the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            PairRovStatus::BothValid => "valid+valid",
            PairRovStatus::ValidNotFound => "valid+notfound",
            PairRovStatus::ValidInvalid => "valid+invalid",
            PairRovStatus::InvalidNotFound => "invalid+notfound",
            PairRovStatus::BothInvalid => "invalid+invalid",
            PairRovStatus::BothNotFound => "notfound+notfound",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RovState::*;

    #[test]
    fn classification_is_symmetric() {
        for &a in &[Valid, Invalid, NotFound] {
            for &b in &[Valid, Invalid, NotFound] {
                assert_eq!(
                    PairRovStatus::from_states(a, b),
                    PairRovStatus::from_states(b, a)
                );
            }
        }
    }

    #[test]
    fn all_nine_combinations() {
        assert_eq!(
            PairRovStatus::from_states(Valid, Valid),
            PairRovStatus::BothValid
        );
        assert_eq!(
            PairRovStatus::from_states(Valid, NotFound),
            PairRovStatus::ValidNotFound
        );
        assert_eq!(
            PairRovStatus::from_states(Valid, Invalid),
            PairRovStatus::ValidInvalid
        );
        assert_eq!(
            PairRovStatus::from_states(Invalid, NotFound),
            PairRovStatus::InvalidNotFound
        );
        assert_eq!(
            PairRovStatus::from_states(Invalid, Invalid),
            PairRovStatus::BothInvalid
        );
        assert_eq!(
            PairRovStatus::from_states(NotFound, NotFound),
            PairRovStatus::BothNotFound
        );
    }

    #[test]
    fn helper_predicates() {
        assert!(PairRovStatus::BothValid.at_least_one_valid());
        assert!(PairRovStatus::ValidInvalid.at_least_one_valid());
        assert!(!PairRovStatus::BothNotFound.at_least_one_valid());
        assert!(!PairRovStatus::InvalidNotFound.at_least_one_valid());
        assert!(PairRovStatus::ValidInvalid.is_conflicting());
        assert!(!PairRovStatus::BothValid.is_conflicting());
    }
}
