//! RPKI model (§2.6, §4.8 of the paper).
//!
//! The paper downloads monthly RPKI snapshots from all five RIRs and
//! classifies every sibling prefix pair by the joint route-origin
//! validation (ROV) state of its two BGP announcements. This crate
//! implements:
//!
//! * [`Roa`] — a route origin authorization (prefix, maxLength, origin);
//! * [`RoaTable`] — per-family ROA storage with covering-ROA lookup;
//! * [`validate`](RoaTable::validate_v4) — RFC 6811 origin validation:
//!   a route is `Valid` if some covering ROA authorizes its origin at its
//!   length, `Invalid` if covering ROAs exist but none match, `NotFound`
//!   if no ROA covers it;
//! * [`PairRovStatus`] — the six joint categories plotted in Fig. 18;
//! * [`RpkiArchive`] — monthly snapshots, mirroring the RIR archives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod roa;
mod status;

pub use archive::RpkiArchive;
pub use roa::{Roa, RoaError, RoaTable, RovState};
pub use status::PairRovStatus;
