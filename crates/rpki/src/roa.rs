//! ROAs and RFC 6811 route-origin validation.

use sibling_net_types::{AnyPrefix, Asn, Ipv4Prefix, Ipv6Prefix};
use sibling_ptrie::PatriciaTrie;

/// A route origin authorization: `origin` may announce `prefix` and its
/// more-specifics up to `max_length`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: AnyPrefix,
    /// Maximum announced length authorized (≥ the prefix length).
    pub max_length: u8,
    /// The authorized origin AS.
    pub origin: Asn,
}

/// ROA construction errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoaError {
    /// `max_length` below the prefix length.
    MaxLengthBelowPrefix,
    /// `max_length` beyond the family width.
    MaxLengthBeyondFamily,
}

impl std::fmt::Display for RoaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoaError::MaxLengthBelowPrefix => write!(f, "maxLength below prefix length"),
            RoaError::MaxLengthBeyondFamily => write!(f, "maxLength beyond family width"),
        }
    }
}

impl std::error::Error for RoaError {}

impl Roa {
    /// Creates a ROA, validating the maxLength bounds.
    pub fn new(prefix: AnyPrefix, max_length: u8, origin: Asn) -> Result<Self, RoaError> {
        if max_length < prefix.len() {
            return Err(RoaError::MaxLengthBelowPrefix);
        }
        let width = match prefix {
            AnyPrefix::V4(_) => 32,
            AnyPrefix::V6(_) => 128,
        };
        if max_length > width {
            return Err(RoaError::MaxLengthBeyondFamily);
        }
        Ok(Self {
            prefix,
            max_length,
            origin,
        })
    }

    /// Whether this ROA authorizes the announcement `(prefix, origin)`.
    pub fn authorizes(&self, prefix: &AnyPrefix, origin: Asn) -> bool {
        self.prefix.covers(prefix) && prefix.len() <= self.max_length && self.origin == origin
    }

    /// Whether this ROA covers `prefix` at all (regardless of origin or
    /// length) — coverage is what separates `Invalid` from `NotFound`.
    pub fn covers(&self, prefix: &AnyPrefix) -> bool {
        self.prefix.covers(prefix)
    }
}

/// RFC 6811 route-origin validation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RovState {
    /// A covering ROA authorizes the announcement.
    Valid,
    /// Covering ROAs exist, but none authorizes the announcement.
    Invalid,
    /// No ROA covers the announced prefix.
    NotFound,
}

/// One snapshot's ROA set, indexed for covering-ROA lookup.
#[derive(Default, Clone)]
pub struct RoaTable {
    v4: PatriciaTrie<u32, Vec<(u8, Asn)>>,
    v6: PatriciaTrie<u128, Vec<(u8, Asn)>>,
    len: usize,
}

impl RoaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ROA to the table.
    pub fn add(&mut self, roa: Roa) {
        self.len += 1;
        match roa.prefix {
            AnyPrefix::V4(p) => match self.v4.get_mut(&p) {
                Some(list) => list.push((roa.max_length, roa.origin)),
                None => {
                    self.v4.insert(p, vec![(roa.max_length, roa.origin)]);
                }
            },
            AnyPrefix::V6(p) => match self.v6.get_mut(&p) {
                Some(list) => list.push((roa.max_length, roa.origin)),
                None => {
                    self.v6.insert(p, vec![(roa.max_length, roa.origin)]);
                }
            },
        }
    }

    /// Number of ROAs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no ROAs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Validates an announced IPv4 route.
    pub fn validate_v4(&self, prefix: &Ipv4Prefix, origin: Asn) -> RovState {
        let covering = self.v4.covering(prefix);
        if covering.is_empty() {
            return RovState::NotFound;
        }
        for (_roa_prefix, entries) in &covering {
            for (max_len, roa_origin) in entries.iter() {
                if prefix.len() <= *max_len && *roa_origin == origin {
                    return RovState::Valid;
                }
            }
        }
        RovState::Invalid
    }

    /// Validates an announced IPv6 route.
    pub fn validate_v6(&self, prefix: &Ipv6Prefix, origin: Asn) -> RovState {
        let covering = self.v6.covering(prefix);
        if covering.is_empty() {
            return RovState::NotFound;
        }
        for (_roa_prefix, entries) in &covering {
            for (max_len, roa_origin) in entries.iter() {
                if prefix.len() <= *max_len && *roa_origin == origin {
                    return RovState::Valid;
                }
            }
        }
        RovState::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn roa4(s: &str, max_len: u8, origin: u32) -> Roa {
        Roa::new(AnyPrefix::V4(v4(s)), max_len, Asn(origin)).unwrap()
    }

    #[test]
    fn roa_bounds_checked() {
        assert_eq!(
            Roa::new(AnyPrefix::V4(v4("10.0.0.0/16")), 8, Asn(1)),
            Err(RoaError::MaxLengthBelowPrefix)
        );
        assert_eq!(
            Roa::new(AnyPrefix::V4(v4("10.0.0.0/16")), 33, Asn(1)),
            Err(RoaError::MaxLengthBeyondFamily)
        );
        assert!(Roa::new(AnyPrefix::V4(v4("10.0.0.0/16")), 16, Asn(1)).is_ok());
        let p6: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert!(Roa::new(AnyPrefix::V6(p6), 128, Asn(1)).is_ok());
        assert_eq!(
            Roa::new(AnyPrefix::V6(p6), 129, Asn(1)),
            Err(RoaError::MaxLengthBeyondFamily)
        );
    }

    #[test]
    fn not_found_without_covering_roa() {
        let table = RoaTable::new();
        assert_eq!(
            table.validate_v4(&v4("10.0.0.0/16"), Asn(1)),
            RovState::NotFound
        );
        let mut table = RoaTable::new();
        table.add(roa4("11.0.0.0/8", 24, 1));
        assert_eq!(
            table.validate_v4(&v4("10.0.0.0/16"), Asn(1)),
            RovState::NotFound
        );
    }

    #[test]
    fn valid_requires_origin_and_length() {
        let mut table = RoaTable::new();
        table.add(roa4("10.0.0.0/8", 16, 64500));
        // Exact authorized origin at an allowed length.
        assert_eq!(
            table.validate_v4(&v4("10.1.0.0/16"), Asn(64500)),
            RovState::Valid
        );
        // Wrong origin.
        assert_eq!(
            table.validate_v4(&v4("10.1.0.0/16"), Asn(64501)),
            RovState::Invalid
        );
        // Too specific (beyond maxLength).
        assert_eq!(
            table.validate_v4(&v4("10.1.1.0/24"), Asn(64500)),
            RovState::Invalid
        );
        // The covering prefix itself.
        assert_eq!(
            table.validate_v4(&v4("10.0.0.0/8"), Asn(64500)),
            RovState::Valid
        );
    }

    #[test]
    fn any_covering_roa_can_validate() {
        let mut table = RoaTable::new();
        table.add(roa4("10.0.0.0/8", 8, 64500));
        table.add(roa4("10.1.0.0/16", 24, 64501));
        // Invalid under the /8 (too specific), valid under the /16.
        assert_eq!(
            table.validate_v4(&v4("10.1.2.0/24"), Asn(64501)),
            RovState::Valid
        );
        // The /8's origin cannot use the /16's generous maxLength.
        assert_eq!(
            table.validate_v4(&v4("10.1.2.0/24"), Asn(64500)),
            RovState::Invalid
        );
    }

    #[test]
    fn multiple_roas_same_prefix() {
        let mut table = RoaTable::new();
        table.add(roa4("10.0.0.0/8", 16, 64500));
        table.add(roa4("10.0.0.0/8", 16, 64501));
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.validate_v4(&v4("10.1.0.0/16"), Asn(64500)),
            RovState::Valid
        );
        assert_eq!(
            table.validate_v4(&v4("10.1.0.0/16"), Asn(64501)),
            RovState::Valid
        );
        assert_eq!(
            table.validate_v4(&v4("10.1.0.0/16"), Asn(64502)),
            RovState::Invalid
        );
    }

    #[test]
    fn v6_validation() {
        let mut table = RoaTable::new();
        let p: Ipv6Prefix = "2600:9000::/28".parse().unwrap();
        table.add(Roa::new(AnyPrefix::V6(p), 48, Asn(16509)).unwrap());
        let announced: Ipv6Prefix = "2600:9000:1::/48".parse().unwrap();
        assert_eq!(table.validate_v6(&announced, Asn(16509)), RovState::Valid);
        assert_eq!(table.validate_v6(&announced, Asn(13335)), RovState::Invalid);
        let outside: Ipv6Prefix = "2a00::/16".parse().unwrap();
        assert_eq!(table.validate_v6(&outside, Asn(16509)), RovState::NotFound);
    }

    #[test]
    fn roa_authorizes_helper() {
        let roa = roa4("10.0.0.0/8", 16, 64500);
        assert!(roa.authorizes(&AnyPrefix::V4(v4("10.1.0.0/16")), Asn(64500)));
        assert!(!roa.authorizes(&AnyPrefix::V4(v4("10.1.1.0/24")), Asn(64500)));
        assert!(roa.covers(&AnyPrefix::V4(v4("10.1.1.0/24"))));
        let p6: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert!(!roa.covers(&AnyPrefix::V6(p6)));
    }
}
