//! Ground-truth probe populations and the coverage evaluator (§3.5).
//!
//! The paper validates its sibling prefixes against two real-world
//! dual-stack deployments:
//!
//! * **RIPE Atlas**: of 5174 dual-stack probes, 42.5% have both addresses
//!   covered by sibling prefixes, 32.1% are partially covered, and 25.3%
//!   are not covered; of the fully covered probes, 89.36% fall into a
//!   best-match sibling pair.
//! * **IPinfo VPSes**: 260 dual-stack virtual private servers across
//!   providers; 53 land in best-match siblings vs. 13 mismatches.
//!
//! [`CoverageEvaluator`] reproduces the evaluation: given the sibling pair
//! list, it classifies any set of [`DualStackEndpoint`]s into
//! covered / partially covered / uncovered, and splits the covered ones by
//! whether their (v4 prefix, v6 prefix) combination is itself a sibling
//! pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};
use sibling_ptrie::PatriciaTrie;

/// A dual-stack vantage point: one public IPv4 and one public IPv6 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DualStackEndpoint {
    /// A stable identifier (probe id / VPS id).
    pub id: u32,
    /// The public IPv4 address.
    pub v4: u32,
    /// The public IPv6 address.
    pub v6: u128,
}

/// How a probe relates to the sibling-prefix dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoverageClass {
    /// Both addresses fall inside sibling prefixes, and the specific
    /// (v4, v6) prefix combination is a best-match sibling pair.
    CoveredBestMatch,
    /// Both addresses fall inside sibling prefixes, but the combination is
    /// not itself a sibling pair.
    CoveredMismatch,
    /// Exactly one address falls inside a sibling prefix.
    Partial,
    /// Neither address is covered.
    Uncovered,
}

/// Aggregate §3.5 ground-truth statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Fully covered and in a best-match pair (RIPE Atlas: 1966).
    pub covered_best_match: usize,
    /// Fully covered but not a best-match pair (RIPE Atlas: 234).
    pub covered_mismatch: usize,
    /// Partially covered (RIPE Atlas: 1663).
    pub partial: usize,
    /// Not covered (RIPE Atlas: 1310).
    pub uncovered: usize,
}

impl CoverageReport {
    /// Total endpoints evaluated.
    pub fn total(&self) -> usize {
        self.covered_best_match + self.covered_mismatch + self.partial + self.uncovered
    }

    /// Fully covered endpoints (both families).
    pub fn covered(&self) -> usize {
        self.covered_best_match + self.covered_mismatch
    }

    /// Share of fully covered endpoints.
    pub fn covered_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.covered() as f64 / self.total() as f64
        }
    }

    /// Share of covered endpoints that land in a best-match pair
    /// (the paper's 89.36% headline).
    pub fn best_match_share(&self) -> f64 {
        if self.covered() == 0 {
            0.0
        } else {
            self.covered_best_match as f64 / self.covered() as f64
        }
    }
}

/// Classifies endpoints against a sibling pair list.
pub struct CoverageEvaluator {
    v4_trie: PatriciaTrie<u32, ()>,
    v6_trie: PatriciaTrie<u128, ()>,
    pairs: BTreeSet<(Ipv4Prefix, Ipv6Prefix)>,
}

impl CoverageEvaluator {
    /// Builds an evaluator from the best-match sibling pairs.
    pub fn new(pairs: &[(Ipv4Prefix, Ipv6Prefix)]) -> Self {
        let mut v4_trie = PatriciaTrie::new();
        let mut v6_trie = PatriciaTrie::new();
        let mut pair_set = BTreeSet::new();
        for (p4, p6) in pairs {
            v4_trie.insert(*p4, ());
            v6_trie.insert(*p6, ());
            pair_set.insert((*p4, *p6));
        }
        Self {
            v4_trie,
            v6_trie,
            pairs: pair_set,
        }
    }

    /// Classifies a single endpoint.
    ///
    /// An address is "covered" if any sibling prefix contains it; the
    /// most specific containing sibling prefix is used for the pair check,
    /// matching how addresses map to prefixes in the pipeline.
    pub fn classify(&self, ep: &DualStackEndpoint) -> CoverageClass {
        let m4 = self.v4_trie.longest_match(ep.v4).map(|(p, _)| p);
        let m6 = self.v6_trie.longest_match(ep.v6).map(|(p, _)| p);
        match (m4, m6) {
            (Some(p4), Some(p6)) => {
                if self.pairs.contains(&(p4, p6)) {
                    CoverageClass::CoveredBestMatch
                } else {
                    CoverageClass::CoveredMismatch
                }
            }
            (Some(_), None) | (None, Some(_)) => CoverageClass::Partial,
            (None, None) => CoverageClass::Uncovered,
        }
    }

    /// Classifies a population and aggregates the report.
    pub fn evaluate(&self, endpoints: &[DualStackEndpoint]) -> CoverageReport {
        let mut report = CoverageReport::default();
        for ep in endpoints {
            match self.classify(ep) {
                CoverageClass::CoveredBestMatch => report.covered_best_match += 1,
                CoverageClass::CoveredMismatch => report.covered_mismatch += 1,
                CoverageClass::Partial => report.partial += 1,
                CoverageClass::Uncovered => report.uncovered += 1,
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn a4(s: &str) -> u32 {
        s.parse::<Ipv4Addr>().unwrap().into()
    }

    fn a6(s: &str) -> u128 {
        s.parse::<Ipv6Addr>().unwrap().into()
    }

    fn evaluator() -> CoverageEvaluator {
        CoverageEvaluator::new(&[
            (p4("192.0.2.0/24"), p6("2001:db8:1::/48")),
            (p4("198.51.100.0/24"), p6("2001:db8:2::/48")),
        ])
    }

    #[test]
    fn best_match_classification() {
        let ev = evaluator();
        let ep = DualStackEndpoint {
            id: 1,
            v4: a4("192.0.2.10"),
            v6: a6("2001:db8:1::10"),
        };
        assert_eq!(ev.classify(&ep), CoverageClass::CoveredBestMatch);
    }

    #[test]
    fn covered_but_mismatched_pair() {
        let ev = evaluator();
        let ep = DualStackEndpoint {
            id: 2,
            v4: a4("192.0.2.10"),
            v6: a6("2001:db8:2::10"),
        };
        assert_eq!(ev.classify(&ep), CoverageClass::CoveredMismatch);
    }

    #[test]
    fn partial_and_uncovered() {
        let ev = evaluator();
        let partial = DualStackEndpoint {
            id: 3,
            v4: a4("192.0.2.10"),
            v6: a6("2a00::1"),
        };
        assert_eq!(ev.classify(&partial), CoverageClass::Partial);
        let none = DualStackEndpoint {
            id: 4,
            v4: a4("8.8.8.8"),
            v6: a6("2a00::1"),
        };
        assert_eq!(ev.classify(&none), CoverageClass::Uncovered);
    }

    #[test]
    fn report_aggregation_and_shares() {
        let ev = evaluator();
        let eps = vec![
            DualStackEndpoint {
                id: 1,
                v4: a4("192.0.2.10"),
                v6: a6("2001:db8:1::10"),
            },
            DualStackEndpoint {
                id: 2,
                v4: a4("192.0.2.11"),
                v6: a6("2001:db8:2::10"),
            },
            DualStackEndpoint {
                id: 3,
                v4: a4("192.0.2.12"),
                v6: a6("2a00::1"),
            },
            DualStackEndpoint {
                id: 4,
                v4: a4("8.8.8.8"),
                v6: a6("2a00::2"),
            },
        ];
        let r = ev.evaluate(&eps);
        assert_eq!(r.covered_best_match, 1);
        assert_eq!(r.covered_mismatch, 1);
        assert_eq!(r.partial, 1);
        assert_eq!(r.uncovered, 1);
        assert_eq!(r.total(), 4);
        assert!((r.covered_share() - 0.5).abs() < 1e-12);
        assert!((r.best_match_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_shares_are_zero() {
        let r = CoverageReport::default();
        assert_eq!(r.covered_share(), 0.0);
        assert_eq!(r.best_match_share(), 0.0);
    }

    #[test]
    fn most_specific_sibling_prefix_wins() {
        // Overlapping sibling v4 prefixes: /24 inside /16.
        let ev = CoverageEvaluator::new(&[
            (p4("10.0.0.0/16"), p6("2001:db8:1::/48")),
            (p4("10.0.1.0/24"), p6("2001:db8:2::/48")),
        ]);
        let ep = DualStackEndpoint {
            id: 1,
            v4: a4("10.0.1.5"),
            v6: a6("2001:db8:2::5"),
        };
        // The /24 is the most specific container and pairs with db8:2.
        assert_eq!(ev.classify(&ep), CoverageClass::CoveredBestMatch);
    }
}
