//! Hypergiant/CDN report (§4.7): which hypergiants and CDNs operate
//! sibling prefixes, how many, and how similar their pairs are.
//!
//! Run with: `cargo run --release --example hypergiant_report [seed]`

use sibling_analysis::{run_by_id, AnalysisContext};
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));

    let result = run_by_id(&ctx, "fig17").expect("fig17 registered");
    println!("{}", result.render());

    // Also show the per-org pair counts as a compact league table.
    use sibling_analysis::classify::pair_hg_cdn;
    use sibling_core::SpTunerConfig;
    let date = ctx.day0();
    let pairs = ctx.tuned_pairs(date, SpTunerConfig::best());
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for pair in pairs.iter() {
        if let Some(org) = pair_hg_cdn(&ctx.world, pair, date) {
            *counts.entry(org).or_insert(0) += 1;
        }
    }
    let mut league: Vec<(String, usize)> = counts.into_iter().collect();
    league.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("\nHG/CDN league table (sibling pairs at /28-/96):");
    for (org, n) in league {
        println!("  {org:<16}{n:>6}");
    }
}
