//! Full reproduction harness: runs every registered experiment (one per
//! paper table/figure) against a paper-scale synthetic world, prints the
//! rendered artefacts, and writes CSVs plus a summary report under
//! `target/experiments/`.
//!
//! Run with: `cargo run --release --example full_reproduction [seed]`
//! Filter:   `cargo run --release --example full_reproduction -- 42 fig05 fig18`

use std::fs;
use std::path::PathBuf;

use sibling_analysis::{all_experiments, AnalysisContext};
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(42);
    let filter: Vec<&String> = args.iter().skip(1).collect();

    eprintln!("generating paper-scale world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));

    let out_dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&out_dir).expect("create output dir");

    let mut summary = String::from("experiment,title,checks_passed,checks_total\n");
    let mut failed = 0usize;
    let mut total_checks = 0usize;
    let mut passed_checks = 0usize;
    for experiment in all_experiments() {
        if !filter.is_empty() && !filter.iter().any(|f| *f == experiment.id()) {
            continue;
        }
        eprintln!("running {} ({})…", experiment.id(), experiment.paper_ref());
        let start = std::time::Instant::now();
        let result = experiment.run(&ctx);
        let elapsed = start.elapsed();
        println!("{}", result.render());
        println!("[{} completed in {:.1?}]\n", result.id, elapsed);
        let ok = result.checks.iter().filter(|c| c.passed).count();
        total_checks += result.checks.len();
        passed_checks += ok;
        if ok != result.checks.len() {
            failed += 1;
        }
        summary.push_str(&format!(
            "{},{},{},{}\n",
            result.id,
            result.title.replace(',', ";"),
            ok,
            result.checks.len()
        ));
        for (name, contents) in &result.csv {
            fs::write(out_dir.join(name), contents).expect("write csv");
        }
    }
    fs::write(out_dir.join("summary.csv"), &summary).expect("write summary");
    println!(
        "== done: {passed_checks}/{total_checks} shape checks passed; {failed} experiments with failures; CSVs in target/experiments/ =="
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
