//! RPKI audit (§4.8): joint ROV status of sibling pairs and the
//! actionable list the paper calls for — pairs where one side is valid and
//! the other lacks a ROA ("it is crucial to add the second prefix to the
//! RPKI by creating a valid route origin authorization").
//!
//! Run with: `cargo run --release --example rpki_audit [seed]`

use sibling_analysis::classify::pair_rov_status;
use sibling_analysis::{run_by_id, AnalysisContext};
use sibling_rpki::PairRovStatus;
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));

    let result = run_by_id(&ctx, "fig18").expect("fig18 registered");
    println!("{}", result.render());

    // Actionable list: one-side-valid / other-not-found pairs.
    let date = ctx.day0();
    let pairs = ctx.default_pairs(date);
    let mut todo = Vec::new();
    let mut conflicting = Vec::new();
    for pair in pairs.iter() {
        match pair_rov_status(&ctx.world, pair, date) {
            Some(PairRovStatus::ValidNotFound) => todo.push(pair),
            Some(PairRovStatus::ValidInvalid) => conflicting.push(pair),
            _ => {}
        }
    }
    println!(
        "pairs needing a ROA for the uncovered side: {} (showing up to 10)",
        todo.len()
    );
    for pair in todo.iter().take(10) {
        println!("  {}  <->  {}", pair.v4, pair.v6);
    }
    println!(
        "pairs with conflicting ROV states (resilience hazard): {}",
        conflicting.len()
    );
    for pair in conflicting.iter().take(10) {
        println!("  {}  <->  {}", pair.v4, pair.v6);
    }
}
