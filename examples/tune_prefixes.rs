//! SP-Tuner demonstration: generate a synthetic Internet, detect sibling
//! prefixes at BGP-announced granularity, then tune their CIDR sizes.
//!
//! Reproduces the headline result of the paper (Fig. 5): the share of
//! perfect-match siblings rises from ~52% (default) through ~67%
//! (/24–/48) to ~82% (/28–/96).
//!
//! Run with: `cargo run --release --example tune_prefixes [seed]`

use sibling_analysis::AnalysisContext;
use sibling_core::SpTunerConfig;
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));
    let date = ctx.day0();

    eprintln!("detecting sibling prefixes at {date}…");
    let default = ctx.default_pairs(date);
    let (mean_d, std_d) = default.similarity_mean_std();
    let (v4, v6) = default.unique_prefix_counts();
    println!(
        "default:      {:>6} pairs ({v4} v4 / {v6} v6 prefixes)  perfect {:>5.1}%  mean {mean_d:.3} ± {std_d:.3}",
        default.len(),
        default.perfect_match_share() * 100.0
    );

    for (label, config) in [
        ("tuned /24-/48", SpTunerConfig::routable()),
        ("tuned /28-/96", SpTunerConfig::best()),
    ] {
        eprintln!("running SP-Tuner {label}…");
        let tuned = ctx.tuned_pairs(date, config);
        let (mean, std) = tuned.similarity_mean_std();
        println!(
            "{label}: {:>6} pairs                         perfect {:>5.1}%  mean {mean:.3} ± {std:.3}",
            tuned.len(),
            tuned.perfect_match_share() * 100.0
        );
    }
    println!("\npaper reference: default 52% | /24-/48 67% | /28-/96 82% perfect matches");
}
