//! Non-domain payloads (§3.7/§6): the paper notes its technique works
//! with any input that maps prefixes to sets — "such as alias datasets or
//! open ports on devices". This example detects sibling prefixes from
//! *responsive port sets* instead of domain sets, then cross-validates
//! against the domain-based siblings (the Fig. 6 correlation).
//!
//! Run with: `cargo run --release --example portscan_siblings [seed]`

use std::collections::{BTreeMap, BTreeSet};

use sibling_analysis::AnalysisContext;
use sibling_core::metrics::jaccard;
use sibling_net_types::{Ipv4Prefix, Ipv6Prefix};
use sibling_scan::{ScanConfig, Scanner};
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));
    let date = ctx.day0();
    let snapshot = ctx.snapshot(date);

    // Scan all DS addresses.
    let mut v4_targets = Vec::new();
    let mut v6_targets = Vec::new();
    for (_, addrs) in snapshot.ds_domains() {
        v4_targets.extend(&addrs.v4);
        v6_targets.extend(&addrs.v6);
    }
    v4_targets.sort_unstable();
    v4_targets.dedup();
    v6_targets.sort_unstable();
    v6_targets.dedup();
    let deployment = ctx.world.deployment(date);
    let report = Scanner::new(ScanConfig::default()).scan(&deployment, &v4_targets, &v6_targets);
    eprintln!(
        "scanned {} probes in {:.1} simulated seconds; {} v4 / {} v6 responsive hosts",
        report.probes_sent,
        report.duration_secs,
        report.v4.len(),
        report.v6.len()
    );

    // Build per-announced-prefix payload sets: (port, host-offset) pairs
    // form the set elements, giving the generic set-similarity machinery
    // something richer than bare port numbers.
    let rib = ctx.world.rib();
    let mut v4_sets: BTreeMap<Ipv4Prefix, BTreeSet<u16>> = BTreeMap::new();
    let mut v6_sets: BTreeMap<Ipv6Prefix, BTreeSet<u16>> = BTreeMap::new();
    for (addr, ports) in &report.v4 {
        if let Some(route) = rib.lookup(*addr) {
            v4_sets
                .entry(route.prefix)
                .or_default()
                .extend(ports.iter());
        }
    }
    for (addr, ports) in &report.v6 {
        if let Some(route) = rib.lookup(*addr) {
            v6_sets
                .entry(route.prefix)
                .or_default()
                .extend(ports.iter());
        }
    }

    // Port-based siblings: for each v4 prefix, the best-matching v6
    // prefix by port-set Jaccard (restricted to the domain-sibling
    // candidates to keep the comparison honest).
    let domain_siblings = ctx.default_pairs(date);
    let mut agree = 0usize;
    let mut compared = 0usize;
    for pair in domain_siblings.iter() {
        let (Some(a), Some(b)) = (v4_sets.get(&pair.v4), v6_sets.get(&pair.v6)) else {
            continue;
        };
        compared += 1;
        // jaccard() takes sorted slices; BTreeSet iteration is sorted.
        let a: Vec<u16> = a.iter().copied().collect();
        let b: Vec<u16> = b.iter().copied().collect();
        let port_j = jaccard(&a, &b);
        if (port_j.to_f64() - pair.similarity.to_f64()).abs() < 0.25
            || (port_j.to_f64() >= 0.9 && pair.similarity.to_f64() >= 0.9)
        {
            agree += 1;
        }
    }
    println!(
        "domain-based siblings with responsive port data: {compared} of {}",
        domain_siblings.len()
    );
    println!(
        "pairs where port-set similarity corroborates the domain-based similarity: {agree} ({:.1}%)",
        agree as f64 / compared.max(1) as f64 * 100.0
    );
    println!("(the paper finds 36% of responsive pairs in the >=0.9/>=0.9 cell, Fig. 6)");
}
