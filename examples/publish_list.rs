//! Publishes the sibling-prefix list in the format the paper commits to
//! releasing at sibling-prefixes.github.io: one CSV row per pair with the
//! prefixes, similarity, domain counts, origin ASNs, organization
//! relationship and ROV status.
//!
//! Run with: `cargo run --release --example publish_list [seed] [out.csv]`

use std::fs;

use sibling_analysis::classify::{pair_origins, pair_rov_status, pair_same_org};
use sibling_analysis::AnalysisContext;
use sibling_core::SpTunerConfig;
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/sibling-prefixes.csv".to_string());
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));
    let date = ctx.day0();
    let pairs = ctx.tuned_pairs(date, SpTunerConfig::best());

    let mut csv = String::from(
        "ipv4_prefix,ipv6_prefix,jaccard,shared_domains,v4_domains,v6_domains,v4_origin_asn,v6_origin_asn,same_org,rov_status\n",
    );
    for pair in pairs.iter() {
        let (a4, a6) = match pair_origins(&ctx.world, pair) {
            Some(o) => o,
            None => continue,
        };
        let same_org = pair_same_org(&ctx.world, pair, date).unwrap_or(false);
        let rov = pair_rov_status(&ctx.world, pair, date)
            .map(|s| s.label().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        csv.push_str(&format!(
            "{},{},{:.6},{},{},{},{},{},{},{}\n",
            pair.v4,
            pair.v6,
            pair.similarity.to_f64(),
            pair.shared_domains,
            pair.v4_domains,
            pair.v6_domains,
            a4.0,
            a6.0,
            same_org,
            rov
        ));
    }
    if let Some(parent) = std::path::Path::new(&out).parent() {
        fs::create_dir_all(parent).expect("create output dir");
    }
    fs::write(&out, &csv).expect("write list");
    println!(
        "wrote {} sibling prefix pairs (snapshot {date}) to {out}",
        pairs.len()
    );
}
