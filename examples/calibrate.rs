//! Internal calibration probe: dissects the default sibling-pair
//! distribution by layout to verify the worldgen shape knobs.
//!
//! Run with: `cargo run --release --example calibrate [seed] [move4] [move6]`

use sibling_analysis::AnalysisContext;
use sibling_core::SpTunerConfig;
use sibling_worldgen::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let move4 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(-1.0);
    let move6 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(-1.0);
    let mut config = WorldConfig::paper_scale(seed);
    if move4 >= 0.0 {
        config.v4_only_move_monthly = move4;
    }
    if move6 >= 0.0 {
        config.v6_only_move_monthly = move6;
    }
    let move_j = std::env::args()
        .nth(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(-1.0);
    if move_j >= 0.0 {
        config.joint_move_monthly = move_j;
    }
    let ctx = AnalysisContext::new(World::generate(config));
    let date = ctx.day0();
    let default = ctx.default_pairs(date);

    // Monitoring pair count and perfection.
    let mon = ctx.world.monitoring().unwrap();
    let mon_v4: std::collections::BTreeSet<_> = mon
        .v4_pods
        .iter()
        .map(|p| ctx.world.pods()[*p as usize].v4_announced)
        .collect();
    let mut mon_pairs = 0;
    let mut mon_perfect = 0;
    let mut organic_pairs = 0;
    let mut organic_perfect = 0;
    for pair in default.iter() {
        if mon_v4.contains(&pair.v4) {
            mon_pairs += 1;
            mon_perfect += pair.similarity.is_one() as usize;
        } else {
            organic_pairs += 1;
            organic_perfect += pair.similarity.is_one() as usize;
        }
    }
    println!(
        "default pairs {} | monitoring {mon_pairs} (perfect {mon_perfect}) | organic {organic_pairs} (perfect {organic_perfect} = {:.1}%)",
        default.len(),
        organic_perfect as f64 / organic_pairs.max(1) as f64 * 100.0
    );
    println!(
        "default perfect {:.1}%  mean {:.3}",
        default.perfect_match_share() * 100.0,
        default.similarity_mean_std().0
    );
    let tuned = ctx.tuned_pairs(date, SpTunerConfig::best());
    println!(
        "tuned-28/96 perfect {:.1}%  mean {:.3}  pairs {}",
        tuned.perfect_match_share() * 100.0,
        tuned.similarity_mean_std().0,
        tuned.len()
    );

    // Break down imperfect tuned pairs by the layout of the unit whose
    // pod the pair's v4 prefix covers (or is covered by).
    let mut imperfect_by_layout: std::collections::BTreeMap<String, usize> = Default::default();
    let mut total_by_layout: std::collections::BTreeMap<String, usize> = Default::default();
    for pair in tuned.iter() {
        let mut layout = "unknown".to_string();
        for pod in ctx.world.pods() {
            if (pair.v4.covers(&pod.v4_sub) || pod.v4_announced.covers(&pair.v4))
                && (pair.v6.covers(&pod.v6_sub) || pod.v6_announced.covers(&pair.v6))
            {
                layout = format!("{:?}", ctx.world.units()[pod.unit as usize].layout);
                break;
            }
        }
        *total_by_layout.entry(layout.clone()).or_insert(0) += 1;
        if !pair.similarity.is_one() {
            *imperfect_by_layout.entry(layout).or_insert(0) += 1;
        }
    }
    println!("\ntuned imperfect by layout (imperfect/total):");
    for (layout, total) in &total_by_layout {
        let imp = imperfect_by_layout.get(layout).copied().unwrap_or(0);
        println!("  {layout:<20} {imp:>5}/{total}");
    }

    // Same-org vs diff-org shape (fig14/15/31 constraints) at two levels.
    use sibling_analysis::classify::pair_same_org;
    for (label, set) in [("default", &default), ("tuned", &tuned)] {
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for pair in set.iter() {
            match pair_same_org(&ctx.world, pair, date) {
                Some(true) => same.push(pair.similarity.to_f64()),
                Some(false) => diff.push(pair.similarity.to_f64()),
                None => {}
            }
        }
        same.sort_by(|a, b| a.partial_cmp(b).unwrap());
        diff.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = |v: &Vec<f64>| if v.is_empty() { 0.0 } else { v[v.len() / 2] };
        let perfect = |v: &Vec<f64>| {
            v.iter().filter(|x| **x >= 1.0 - 1e-12).count() as f64 / v.len().max(1) as f64
        };
        println!(
            "{label}: same {} (median {:.2}, perfect {:.2}) | diff {} (median {:.2}, perfect {:.2})",
            same.len(),
            med(&same),
            perfect(&same),
            diff.len(),
            med(&diff),
            perfect(&diff)
        );
    }
}
