//! Geolocation transfer (§1): derive an IPv6 geolocation database from an
//! IPv4 one via sibling prefixes, and show the blocklist variant (§6).
//!
//! Run with: `cargo run --release --example geo_transfer [seed]`

use sibling_analysis::{run_by_id, AnalysisContext};
use sibling_worldgen::{World, WorldConfig};
use sibling_xfer::{transfer_v4_to_v6, TransferConfig, V4Db};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("generating world (seed {seed})…");
    let ctx = AnalysisContext::new(World::generate(WorldConfig::paper_scale(seed)));

    // The registered extension experiment does the full evaluation.
    let result = run_by_id(&ctx, "ext_transfer").expect("ext_transfer registered");
    println!("{}", result.render());

    // Blocklist variant: block a handful of v4 prefixes, close the v6
    // backdoor ("the adaption of IPv4 spam blocklists to IPv6", §6).
    let date = ctx.day0();
    let pairs: Vec<_> = ctx.default_pairs(date).iter().copied().collect();
    let mut blocklist: V4Db<bool> = V4Db::new();
    for pod in ctx.world.pods().iter().step_by(37).take(12) {
        blocklist.insert(pod.v4_announced, true);
    }
    let strict = TransferConfig {
        min_confidence: 0.9,
    };
    let derived = transfer_v4_to_v6(&pairs, &blocklist, &strict);
    println!(
        "blocklist variant: {} v4 entries → {} derived v6 entries (min confidence 0.9):",
        blocklist.len(),
        derived.len()
    );
    for (prefix, entry) in derived.iter().take(8) {
        println!(
            "  block {prefix}  (from {}, confidence {:.2})",
            entry.source, entry.confidence
        );
    }
}
