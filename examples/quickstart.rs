//! Quickstart: the four methodology steps of the paper (Fig. 3) on a
//! hand-built miniature dataset — no synthetic world required.
//!
//! 1. identify dual-stack (DS) domains from DNS resolutions;
//! 2. group DS domains by announced IPv4/IPv6 prefix;
//! 3. compute Jaccard similarity for all prefix pairs;
//! 4. keep the best matches — the sibling prefixes.
//!
//! Run with: `cargo run --example quickstart`

use sibling_bgp::Rib;
use sibling_core::tuner::more_specific::tune_more_specific;
use sibling_core::{detect, BestMatchPolicy, PrefixDomainIndex, SimilarityMetric, SpTunerConfig};
use sibling_dns::{DnsRecord, DnsSnapshot, DomainTable, Zone};
use sibling_net_types::{Asn, Ipv4Prefix, Ipv6Prefix, MonthDate};

fn v4(s: &str) -> u32 {
    s.parse::<std::net::Ipv4Addr>().unwrap().into()
}

fn v6(s: &str) -> u128 {
    s.parse::<std::net::Ipv6Addr>().unwrap().into()
}

fn main() {
    // The worked example of Fig. 3: four DS domains, two prefixes per
    // family. DS-domain1..3 live in IPv4 prefix-1; DS-domain1 and 3 in
    // IPv6 prefix-1; DS-domain2 and 4 in IPv6 prefix-2; DS-domain4 in
    // IPv4 prefix-2. One domain is reached through a CNAME chain.
    let mut names = DomainTable::new();
    let d1 = names.intern("ds-domain1.example");
    let d2 = names.intern("ds-domain2.example");
    let d3_alias = names.intern("www.ds-domain3.example");
    let d3 = names.intern("cdn-edge.ds-domain3.example");
    let d4 = names.intern("ds-domain4.example");

    let mut zone = Zone::new();
    zone.add(d1, DnsRecord::A(v4("203.0.0.10")));
    zone.add(d1, DnsRecord::Aaaa(v6("2600:1::10")));
    zone.add(d2, DnsRecord::A(v4("203.0.0.20")));
    zone.add(d2, DnsRecord::Aaaa(v6("2600:2::20")));
    // The queried name is a CNAME; the pipeline keys on the final name.
    zone.add(d3_alias, DnsRecord::Cname(d3));
    zone.add(d3, DnsRecord::A(v4("203.0.0.30")));
    zone.add(d3, DnsRecord::Aaaa(v6("2600:1::30")));
    zone.add(d4, DnsRecord::A(v4("198.51.0.40")));
    zone.add(d4, DnsRecord::Aaaa(v6("2600:2::40")));

    // Routeviews-style announcements.
    let mut rib = Rib::new();
    rib.announce("203.0.0.0/16".parse::<Ipv4Prefix>().unwrap(), Asn(64500));
    rib.announce("198.51.0.0/16".parse::<Ipv4Prefix>().unwrap(), Asn(64501));
    rib.announce("2600:1::/32".parse::<Ipv6Prefix>().unwrap(), Asn(64500));
    rib.announce("2600:2::/32".parse::<Ipv6Prefix>().unwrap(), Asn(64501));

    // Step 1: resolve and keep dual-stack domains.
    let snapshot = DnsSnapshot::resolve_zone(MonthDate::new(2024, 9), &zone);
    println!(
        "step 1: {} resolved domains, {} dual-stack",
        snapshot.domain_count(),
        snapshot.ds_count()
    );

    // Step 2: group DS domains by announced prefix.
    let index = PrefixDomainIndex::build(&snapshot, &rib);
    let (v4_groups, v6_groups) = index.group_counts();
    println!("step 2: {v4_groups} IPv4 and {v6_groups} IPv6 prefixes with DS domains");
    for (prefix, domains) in index.groups::<u32>() {
        let list: Vec<&str> = domains.iter().filter_map(|d| names.name(*d)).collect();
        println!("    {prefix}  hosts {list:?}");
    }

    // Steps 3+4: similarity and best-match selection.
    let siblings = detect(&index, SimilarityMetric::Jaccard, BestMatchPolicy::Union);
    println!("steps 3-4: {} sibling prefix pairs", siblings.len());
    for pair in siblings.iter() {
        println!(
            "    {}  <->  {}   Jaccard {}/{} = {:.3}",
            pair.v4,
            pair.v6,
            pair.shared_domains,
            pair.v4_domains + pair.v6_domains - pair.shared_domains,
            pair.similarity.to_f64()
        );
    }

    // Bonus: SP-Tuner narrows the CIDR sizes.
    let tuned = tune_more_specific(&index, &siblings, &SpTunerConfig::best());
    println!("SP-Tuner(/28,/96): {} refined pairs", tuned.pairs.len());
    for pair in tuned.pairs.iter() {
        println!(
            "    {}  <->  {}   Jaccard {:.3}",
            pair.v4,
            pair.v6,
            pair.similarity.to_f64()
        );
    }
}
