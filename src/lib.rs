//! Facade over the `sibling-prefixes` workspace.
//!
//! The workspace reproduces conf_imc_OsaliSG25's IPv4/IPv6 sibling-prefix
//! detection pipeline. This crate exists so the root-level `tests/` and
//! `examples/` have a Cargo home; it re-exports every member crate under a
//! short alias for downstream convenience.

#![forbid(unsafe_code)]

pub use sibling_analysis as analysis;
pub use sibling_as_org as as_org;
pub use sibling_bgp as bgp;
pub use sibling_core as core_;
pub use sibling_dns as dns;
pub use sibling_net_types as net_types;
pub use sibling_probes as probes;
pub use sibling_ptrie as ptrie;
pub use sibling_rpki as rpki;
pub use sibling_scan as scan;
pub use sibling_service as service;
pub use sibling_worldgen as worldgen;
pub use sibling_xfer as xfer;
